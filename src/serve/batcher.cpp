#include "serve/batcher.h"

#include <deque>
#include <string>

#include "base/log.h"
#include "check/timeline.h"
#include "check/timeline_extract.h"
#include "sim/engine.h"

namespace swcaffe::serve {

namespace {

/// Handler state shared by the arrival and launch-deadline events.
struct Server {
  const InferenceEngine& engine;
  const ServeOptions& opts;
  sim::Engine* sim = nullptr;
  int server_actor = 0;  ///< actor 0: launch deadlines (ties beat arrivals)
  int client_actor = 0;  ///< actor 1: the open-loop arrival stream
  int server_res = 0;    ///< the one inference engine, served exclusively
  ServeResult result;
  std::deque<std::int64_t> queue;  ///< admitted request ids, FIFO
  std::uint64_t deadline_event = 0;
  bool deadline_armed = false;

  trace::Tracer* tracer() const { return opts.tracer; }
  int server_track() const { return opts.trace_track; }
  int request_track() const { return opts.trace_track + 1; }
  int batch_track() const { return opts.trace_track + 2; }

  /// Advances the request-track clock to the event time (event times are
  /// non-decreasing, so the clock never rewinds) and samples queue depth.
  void mark_time(double t_s) {
    if (trace::Tracer* tr = tracer()) {
      if (t_s > tr->now(request_track())) tr->set_clock(request_track(), t_s);
      tr->counter(request_track(), "serve.queue_depth",
                  static_cast<double>(queue.size()));
    }
  }

  /// Conservative completion bound for a request arriving at `t_s` with the
  /// current queue (see file header of batcher.h for why it is an upper
  /// bound on the actual finish time).
  double predict_completion(double t_s) const {
    const int max_batch = opts.batcher.max_batch;
    const double worst_forward = engine.batch_time(max_batch);
    const std::int64_t batches_ahead =
        static_cast<std::int64_t>(queue.size()) / max_batch;
    const double busy_until = sim->resource(server_res).busy_until();
    const double backlog_free = busy_until > t_s + opts.batcher.max_delay_s
                                    ? busy_until
                                    : t_s + opts.batcher.max_delay_s;
    return backlog_free +
           static_cast<double>(batches_ahead + 1) * worst_forward;
  }

  /// Posts the queue's launch deadline: the oldest member's arrival +
  /// max_delay. The queue drains completely on every launch (a full batch
  /// launches the instant it fills), so the oldest member is always the
  /// request that just made the queue non-empty and at most one timer is
  /// ever pending.
  void arm_deadline() {
    const double deadline =
        result.requests[static_cast<std::size_t>(queue.front())].arrival_s +
        opts.batcher.max_delay_s;
    deadline_event = sim->post(deadline, server_actor, "launch.deadline",
                               [this](sim::Engine& eng) {
                                 deadline_armed = false;
                                 mark_time(eng.now());
                                 launch(eng.now());
                               });
    deadline_armed = true;
  }

  void on_arrival(std::int64_t id, double t_s) {
    mark_time(t_s);
    ++result.offered;
    RequestRecord& r = result.requests[static_cast<std::size_t>(id)];
    const double predicted = predict_completion(t_s);
    r.predicted_s = predicted;
    if (opts.admission.enabled && predicted > t_s + opts.admission.slo_s) {
      ++result.rejected;
      if (trace::Tracer* tr = tracer()) {
        tr->instant(request_track(), "reject req " + std::to_string(id),
                    "serve.reject");
      }
      return;
    }
    r.admitted = true;
    ++result.admitted;
    queue.push_back(id);
    if (static_cast<int>(queue.size()) >= opts.batcher.max_batch) {
      // The batch filled before its deadline; the pending timer (none yet
      // when this arrival is also the one that made the queue non-empty)
      // is obsolete.
      if (deadline_armed) {
        sim->cancel(deadline_event);
        deadline_armed = false;
      }
      launch(t_s);
    } else if (queue.size() == 1) {
      arm_deadline();
    }
  }

  /// Forms a batch from the queue head and places it on the server's busy
  /// interval: start = max(formation time, previous batch's finish).
  void launch(double t_s) {
    SWC_CHECK(!queue.empty());
    BatchRecord b;
    b.id = static_cast<int>(result.batches.size());
    b.size = static_cast<int>(queue.size()) < opts.batcher.max_batch
                 ? static_cast<int>(queue.size())
                 : opts.batcher.max_batch;
    b.first_arrival_s =
        result.requests[static_cast<std::size_t>(queue.front())].arrival_s;
    b.forward_s = engine.batch_time(b.size);
    b.launch_s = sim->acquire(server_res, server_actor, t_s, b.forward_s,
                              "serve.forward", 0);
    b.finish_s = b.launch_s + b.forward_s;

    trace::Tracer* tr = tracer();
    for (int i = 0; i < b.size; ++i) {
      const std::int64_t id = queue.front();
      queue.pop_front();
      RequestRecord& r = result.requests[static_cast<std::size_t>(id)];
      r.batch = b.id;
      r.launch_s = b.launch_s;
      r.finish_s = b.finish_s;
      if (tr) {
        tr->async_span(request_track(), "req " + std::to_string(id),
                       "serve.queue", r.arrival_s, b.launch_s);
      }
    }
    // Every launch drains the whole queue: a full batch launches the moment
    // its last member arrives, so the queue never exceeds max_batch, and a
    // deadline launch takes everything waiting. arm_deadline()'s
    // one-pending-timer invariant rests on this.
    SWC_CHECK(queue.empty());
    if (tr) {
      const std::string label =
          "batch " + std::to_string(b.id) + " (x" + std::to_string(b.size) +
          ")";
      // Formation (oldest arrival -> launch) overlaps the previous batch's
      // forward pass, so it lives on its own track as an async span; the
      // forward pass itself is sequential on the server track.
      tr->async_span(batch_track(), label, "serve.batch", b.first_arrival_s,
                     b.launch_s);
      tr->set_clock(server_track(), b.launch_s);
      tr->begin_span(server_track(), label, "serve.forward");
      tr->end_span(server_track(), b.forward_s);
    }
    result.batches.push_back(b);
  }
};

}  // namespace

ServeResult simulate_serving(const InferenceEngine& engine,
                             const std::vector<double>& arrivals,
                             const ServeOptions& options) {
  SWC_CHECK_GE(options.batcher.max_batch, 1);
  SWC_CHECK_LE(options.batcher.max_batch, engine.max_batch());
  SWC_CHECK_GE(options.batcher.max_delay_s, 0.0);
  SWC_CHECK_GT(options.admission.slo_s, 0.0);

  sim::Engine sim;
  Server server{engine, options, &sim};
  server.server_actor = sim.add_actor("server");
  server.client_actor = sim.add_actor("clients");
  server.server_res = sim.add_resource("engine");
  server.result.requests.resize(arrivals.size());
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    SWC_CHECK_MSG(i == 0 || arrivals[i] > arrivals[i - 1],
                  "arrivals must be strictly increasing");
    server.result.requests[i].id = static_cast<std::int64_t>(i);
    server.result.requests[i].arrival_s = arrivals[i];
  }

  if (trace::Tracer* tr = options.tracer) {
    tr->set_track_name(server.server_track(), "serve.server");
    tr->set_track_name(server.request_track(), "serve.requests");
    tr->set_track_name(server.batch_track(), "serve.batches");
  }

  // The old hand-merged two-source loop (next arrival vs. queue deadline,
  // ties to the deadline) is now the engine's documented (time, actor, seq)
  // order: deadlines fire on the server actor (0), arrivals on the client
  // actor (1), so at one instant the deadline still wins and a max_delay of
  // zero degenerates to batch-of-one serving, the unbatched baseline.
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const std::int64_t id = static_cast<std::int64_t>(i);
    sim.post(
        arrivals[i], server.client_actor, "request.arrival",
        [&server, id](sim::Engine& eng) { server.on_arrival(id, eng.now()); });
  }
  sim.run();
  SWC_CHECK(server.queue.empty());

  ServeResult& res = server.result;
  if (res.offered > 0) {
    res.rejection_rate =
        static_cast<double>(res.rejected) / static_cast<double>(res.offered);
  }
  if (!res.batches.empty()) {
    res.makespan_s = res.batches.back().finish_s;
    res.throughput_rps = static_cast<double>(res.admitted) / res.makespan_s;
    res.utilization =
        sim.resource(server.server_res).busy_s() / res.makespan_s;
    res.mean_batch_size = static_cast<double>(res.admitted) /
                          static_cast<double>(res.batches.size());
  }
  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(res.admitted));
  for (const RequestRecord& r : res.requests) {
    if (r.admitted) latencies.push_back(r.latency_s());
  }
  res.latency = latency_stats(std::move(latencies));

  // swsched: re-verify the whole serving timeline from the records alone —
  // exclusive engine occupancy, request conservation into batches, and the
  // SLO/admission bound re-derived independently of predict_completion.
  // Pure post-processing over finished records: it cannot perturb the
  // priced times above.
  check::ServingContract contract;
  contract.slo_s = options.admission.slo_s;
  contract.max_delay_s = options.batcher.max_delay_s;
  contract.max_batch = options.batcher.max_batch;
  contract.max_batch_forward_s =
      engine.batch_time(options.batcher.max_batch);
  contract.admission = options.admission.enabled;
  const check::Report report = check::verify_timeline(
      check::timeline_from_serving("serve-timeline", res.requests, res.batches,
                                   contract));
  SWC_CHECK_MSG(report.ok(),
                "swsched rejected the serving timeline: " << report.summary());
  return res;
}

}  // namespace swcaffe::serve
