// Open-loop request arrival models for swserve.
//
// Serving experiments need arrival streams that are (a) open-loop — the
// client does not wait for responses, so overload actually builds queues —
// and (b) pure in the seed: like swfault, every arrival time is a function
// of (seed, counter) via a splitmix64 counter hash, with no RNG stream to
// drift. Two same-seed runs therefore produce bit-identical schedules no
// matter how the stream is consumed, which is what makes BENCH_serving.json
// reproducible byte for byte.
//
// Three models:
//  * Poisson  — homogeneous exponential inter-arrivals at `rate` req/s, the
//               standard open-loop benchmark load.
//  * Bursty   — a square-wave modulated Poisson process (peak rate during a
//               duty fraction of each period, `base_fraction` of it between
//               bursts), realized by deterministic thinning of the peak-rate
//               stream so burst membership is also pure in the seed.
//  * Trace    — explicit timestamps supplied by the caller (replay of a
//               recorded production trace).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace swcaffe::serve {

enum class ArrivalKind { kPoisson, kBursty, kTrace };

const char* arrival_kind_name(ArrivalKind kind);
/// Parses "poisson" / "bursty" / "trace"; throws base::CheckError otherwise.
ArrivalKind parse_arrival_kind(const std::string& name);

struct ArrivalSpec {
  ArrivalKind kind = ArrivalKind::kPoisson;
  double rate = 100.0;      ///< req/s: mean (Poisson) or peak (bursty)
  double duration_s = 1.0;  ///< arrivals generated for t in [0, duration)
  std::uint64_t seed = 1;

  // --- Bursty modulation (kind == kBursty) ---------------------------------
  double burst_period_s = 0.2;  ///< square-wave period
  double burst_duty = 0.25;     ///< fraction of each period at peak rate
  double base_fraction = 0.1;   ///< off-burst rate = base_fraction * rate

  // --- Trace replay (kind == kTrace) ---------------------------------------
  std::vector<double> trace;  ///< explicit arrival times (sorted ascending)
};

/// Instantaneous rate multiplier of the bursty square wave at time t
/// (1.0 inside a burst, base_fraction outside; Poisson is identically 1.0).
double burst_factor(const ArrivalSpec& spec, double t_s);

/// Materializes the arrival stream: strictly increasing times in
/// [0, duration_s). Pure in the spec — same spec, same vector, bitwise.
std::vector<double> generate_arrivals(const ArrivalSpec& spec);

}  // namespace swcaffe::serve
