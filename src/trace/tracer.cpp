#include "trace/tracer.h"

#include "base/log.h"

namespace swcaffe::trace {

namespace {
constexpr double kOpenSentinel = -1.0;
}  // namespace

Tracer::Track& Tracer::track(int id) { return tracks_[id]; }

const Tracer::Track* Tracer::find_track(int id) const {
  auto it = tracks_.find(id);
  return it == tracks_.end() ? nullptr : &it->second;
}

double Tracer::now(int track_id) const {
  const Track* t = find_track(track_id);
  return t ? t->clock : 0.0;
}

void Tracer::set_clock(int track_id, double t_s) {
  Track& t = track(track_id);
  if (!t.open.empty()) {
    SWC_CHECK_GE(t_s, spans_[t.open.back()].begin_s);
  }
  t.clock = t_s;
}

void Tracer::advance(int track_id, double dt_s) {
  SWC_CHECK_GE(dt_s, 0.0);
  track(track_id).clock += dt_s;
}

std::int64_t Tracer::begin_span(int track_id, std::string name,
                                std::string category) {
  Track& t = track(track_id);
  Span s;
  s.name = std::move(name);
  s.category = std::move(category);
  s.track = track_id;
  s.begin_s = t.clock;
  s.end_s = kOpenSentinel;
  s.depth = static_cast<int>(t.open.size());
  s.parent = t.open.empty() ? kNoParent : t.open.back();
  const std::int64_t index = static_cast<std::int64_t>(spans_.size());
  spans_.push_back(std::move(s));
  t.open.push_back(index);
  return index;
}

void Tracer::end_span(int track_id) {
  Track& t = track(track_id);
  SWC_CHECK_MSG(!t.open.empty(),
                "end_span on track " << track_id << " with no open span");
  const std::int64_t index = t.open.back();
  t.open.pop_back();
  Span& s = spans_[index];
  SWC_CHECK_GE(t.clock, s.begin_s);
  s.end_s = t.clock;
  // Counters are inclusive: fold the closed child into its parent.
  if (s.parent != kNoParent) spans_[s.parent].traffic.add(s.traffic);
}

void Tracer::end_span(int track_id, double dt_s) {
  advance(track_id, dt_s);
  end_span(track_id);
}

void Tracer::charge(int track_id, const TrafficCounters& c) {
  Track& t = track(track_id);
  if (t.open.empty()) return;
  spans_[t.open.back()].traffic.add(c);
}

void Tracer::counter(int track_id, std::string name, double value) {
  counters_.push_back(
      {std::move(name), track_id, track(track_id).clock, value});
}

void Tracer::instant(int track_id, std::string name, std::string category) {
  instants_.push_back(
      {std::move(name), std::move(category), track_id, track(track_id).clock});
}

std::int64_t Tracer::async_span(int track_id, std::string name,
                                std::string category, double begin_s,
                                double end_s) {
  SWC_CHECK_GE(end_s, begin_s);
  const std::int64_t id = static_cast<std::int64_t>(async_spans_.size());
  async_spans_.push_back(
      {std::move(name), std::move(category), track_id, begin_s, end_s, id});
  return id;
}

void Tracer::set_track_name(int track_id, std::string name) {
  track_names_[track_id] = std::move(name);
}

std::size_t Tracer::open_spans() const {
  std::size_t n = 0;
  for (const auto& [id, t] : tracks_) n += t.open.size();
  return n;
}

void Tracer::clear() {
  tracks_.clear();
  spans_.clear();
  counters_.clear();
  instants_.clear();
  async_spans_.clear();
  // track_names_ kept: naming is configuration, not recorded data.
}

}  // namespace swcaffe::trace
