// Aggregate report over a recorded trace: groups spans by name within one
// category and sums simulated time and traffic — the shape of the paper's
// Table IV/V per-layer breakdowns (time, DMA volume, RLC volume, flops,
// achieved Gflops), printable as an ASCII table or machine-readable JSON.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/tracer.h"

namespace swcaffe::trace {

struct ReportRow {
  std::string name;
  std::string category;
  int count = 0;          ///< number of spans aggregated
  double total_s = 0.0;   ///< summed inclusive simulated time
  TrafficCounters traffic;

  /// Achieved Gflops over the aggregated interval (0 when no flops charged).
  double gflops() const {
    return total_s > 0.0 ? traffic.flops / total_s / 1e9 : 0.0;
  }
};

class Report {
 public:
  /// Aggregates spans whose category matches `category` exactly, or every
  /// TOP-LEVEL span (depth 0) when `category` is empty. Rows keep first-
  /// appearance order (so a per-layer report lists layers in net order).
  static Report build(const Tracer& tracer, const std::string& category = "");

  const std::vector<ReportRow>& rows() const { return rows_; }
  /// Sum of total_s over all rows.
  double total_seconds() const;

  /// ASCII table: name, time, dma/rlc/net volume, Gflops.
  void print(std::ostream& os) const;
  /// JSON object {"rows":[...], "total_s": ...}.
  void write_json(std::ostream& os) const;
  void save_json(const std::string& path) const;

 private:
  std::vector<ReportRow> rows_;
};

}  // namespace swcaffe::trace
