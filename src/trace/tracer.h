// Structured tracing over SIMULATED time.
//
// The simulator has no global clock: every component (DmaEngine, RlcFabric,
// the analytic layer estimators, the all-reduce cost model) computes its own
// durations. The Tracer stitches those durations into per-track timelines:
// instrumentation sites open a span, advance the track's clock by the
// simulated seconds they charge, and close the span. Spans nest (iteration →
// layer → {im2col DMA, mesh GEMM, RLC broadcast}) and carry a
// TrafficCounters snapshot, so the exported trace shows both where simulated
// time goes and what traffic was moved there.
//
// A null tracer costs nothing: every instrumentation site is guarded by a
// single pointer test, and with the pointer unset no code path that affects
// simulated numbers is touched — tracing on or off, the cost-model output is
// bit-identical (asserted in tests/trace_test.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "trace/event.h"

namespace swcaffe::trace {

class Tracer {
 public:
  // --- Clocks -----------------------------------------------------------------
  /// Current simulated time on `track` (0.0 until first touched).
  double now(int track) const;
  /// Jumps the track clock (e.g. aligning a CG track to the node track).
  /// Must not rewind past the begin time of an open span on the track.
  void set_clock(int track, double t_s);
  /// Advances the track clock by `dt_s` simulated seconds (dt_s >= 0).
  void advance(int track, double dt_s);

  // --- Spans ------------------------------------------------------------------
  /// Opens a span at now(track); returns its index in spans().
  std::int64_t begin_span(int track, std::string name, std::string category);
  /// Closes the innermost open span on `track` at now(track). The closed
  /// span's traffic folds into its parent (counters are inclusive).
  void end_span(int track);
  /// Convenience: advance(track, dt_s) then end_span(track).
  void end_span(int track, double dt_s);
  /// Adds traffic to the innermost open span on `track` (no-op when no span
  /// is open — hw engines may run outside any span).
  void charge(int track, const TrafficCounters& c);

  // --- Point events -----------------------------------------------------------
  void counter(int track, std::string name, double value);
  void instant(int track, std::string name, std::string category);

  // --- Async spans ------------------------------------------------------------
  /// Records a possibly-overlapping interval on `track` with explicit begin/
  /// end times (begin_s <= end_s). Unlike begin_span/end_span these are not
  /// stack-disciplined and do not touch the track clock — the natural shape
  /// for per-request serving timelines where many requests wait in a queue
  /// at once. Returns the span's unique id.
  std::int64_t async_span(int track, std::string name, std::string category,
                          double begin_s, double end_s);

  // --- Track metadata ---------------------------------------------------------
  /// Names the track in the exported trace ("node", "cg0", ...).
  void set_track_name(int track, std::string name);
  const std::map<int, std::string>& track_names() const { return track_names_; }

  // --- Results ----------------------------------------------------------------
  /// All spans in OPENING order; parent links index into this vector. A span
  /// still open has end_s < begin_s (sentinel -1); exporters require a
  /// balanced trace (open_spans() == 0).
  const std::vector<Span>& spans() const { return spans_; }
  const std::vector<CounterSample>& counters() const { return counters_; }
  const std::vector<InstantEvent>& instants() const { return instants_; }
  const std::vector<AsyncSpan>& async_spans() const { return async_spans_; }
  /// Number of spans currently open across all tracks (0 after a balanced
  /// instrumentation pass).
  std::size_t open_spans() const;
  /// Drops all recorded events and resets every track clock to zero.
  void clear();

 private:
  struct Track {
    double clock = 0.0;
    std::vector<std::int64_t> open;  ///< indices into spans_, outermost first
  };

  Track& track(int id);
  const Track* find_track(int id) const;

  std::map<int, Track> tracks_;
  std::map<int, std::string> track_names_;
  std::vector<Span> spans_;
  std::vector<CounterSample> counters_;
  std::vector<InstantEvent> instants_;
  std::vector<AsyncSpan> async_spans_;
};

/// RAII span guard that is a no-op when `tracer` is null.
///
///   trace::SpanScope s(cost.tracer(), cost.trace_track(), "im2col", "kernel");
///   ... advance the clock ...
/// closes the span on destruction.
class SpanScope {
 public:
  SpanScope(Tracer* tracer, int track, const char* name, const char* category)
      : tracer_(tracer), track_(track) {
    if (tracer_) tracer_->begin_span(track_, name, category);
  }
  ~SpanScope() {
    if (tracer_) tracer_->end_span(track_);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  Tracer* tracer_;
  int track_;
};

}  // namespace swcaffe::trace
