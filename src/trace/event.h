// Event records collected by trace::Tracer.
//
// All timestamps are SIMULATED seconds (the cost-model clock, not host wall
// time). A "track" is one timeline in the exported trace — by convention
// track 0 is the node aggregate, tracks 1..4 the four core groups, higher
// tracks whatever the instrumentation site registers (e.g. the I/O thread).
#pragma once

#include <cstdint>
#include <string>

#include "trace/counters.h"

namespace swcaffe::trace {

/// Index value meaning "no parent span".
inline constexpr std::int64_t kNoParent = -1;

/// One closed span: a named interval of simulated time on one track.
struct Span {
  std::string name;
  std::string category;
  int track = 0;
  double begin_s = 0.0;
  double end_s = 0.0;
  int depth = 0;                      ///< 0 = top level on its track
  std::int64_t parent = kNoParent;    ///< index into Tracer::spans()
  TrafficCounters traffic;            ///< inclusive of closed children

  double duration_s() const { return end_s - begin_s; }
};

/// One counter sample (chrome "C" event): value of `name` at time `t_s`.
struct CounterSample {
  std::string name;
  int track = 0;
  double t_s = 0.0;
  double value = 0.0;
};

/// A zero-duration marker (chrome "i" event).
struct InstantEvent {
  std::string name;
  std::string category;
  int track = 0;
  double t_s = 0.0;
};

/// One async span (chrome "b"/"e" event pair): a named interval that may
/// OVERLAP other intervals on the same track. Duration spans are
/// stack-disciplined per track (they must nest), which rules them out for
/// per-request serving timelines where many requests queue concurrently;
/// async spans carry an id instead of a stack position, so Perfetto renders
/// each on its own sub-lane. Emitted with explicit times — they neither read
/// nor move the track clock.
struct AsyncSpan {
  std::string name;
  std::string category;
  int track = 0;
  double begin_s = 0.0;
  double end_s = 0.0;
  std::int64_t id = 0;  ///< unique per tracer; ties the b/e pair together

  double duration_s() const { return end_s - begin_s; }
};

}  // namespace swcaffe::trace
