// Chrome-trace-format exporter (the JSON consumed by chrome://tracing and
// https://ui.perfetto.dev). Each Tracer track becomes one named "thread";
// spans are emitted as matched B/E duration events whose args carry the
// span's TrafficCounters, counter samples as "C" events, instants as "i".
// Timestamps are the tracer's simulated seconds expressed in microseconds
// (the trace format's unit).
#pragma once

#include <iosfwd>
#include <string>

#include "trace/tracer.h"

namespace swcaffe::trace {

/// Writes the full trace object ({"traceEvents": [...], ...}) to `os`.
/// Requires a balanced trace (tracer.open_spans() == 0).
void write_chrome_trace(const Tracer& tracer, std::ostream& os);

/// Same, to a file; throws base::CheckError when the file cannot be opened.
void save_chrome_trace(const Tracer& tracer, const std::string& path);

/// Escapes a string for embedding in a JSON string literal (exposed for the
/// report writer and tests).
std::string json_escape(const std::string& s);

}  // namespace swcaffe::trace
