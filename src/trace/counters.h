// Traffic counters attached to trace spans.
//
// Mirrors hw::TrafficLedger's byte/flop bookkeeping (trace cannot include hw
// headers — hw links against trace, not the other way around) and adds the
// network-level volume the topo collectives move. Instrumentation sites
// convert their native ledgers into this struct when charging a span.
#pragma once

#include <cstddef>

namespace swcaffe::trace {

/// Byte/flop counters accumulated by one span (inclusive of children: a
/// child span's traffic folds into its parent when the child closes).
struct TrafficCounters {
  std::size_t dma_get_bytes = 0;  ///< main memory -> LDM
  std::size_t dma_put_bytes = 0;  ///< LDM -> main memory
  std::size_t rlc_bytes = 0;      ///< register-level communication volume
  std::size_t mpe_bytes = 0;      ///< memory copies through the MPE
  std::size_t net_bytes = 0;      ///< inter-node (MPI) volume per node
  double flops = 0.0;             ///< arithmetic executed on the CPE cluster

  void add(const TrafficCounters& o) {
    dma_get_bytes += o.dma_get_bytes;
    dma_put_bytes += o.dma_put_bytes;
    rlc_bytes += o.rlc_bytes;
    mpe_bytes += o.mpe_bytes;
    net_bytes += o.net_bytes;
    flops += o.flops;
  }
  std::size_t dma_bytes() const { return dma_get_bytes + dma_put_bytes; }
  bool empty() const {
    return dma_get_bytes == 0 && dma_put_bytes == 0 && rlc_bytes == 0 &&
           mpe_bytes == 0 && net_bytes == 0 && flops == 0.0;
  }
};

// Canonical counter-sample names (chrome "C" events) emitted by the
// instrumented all-reduce variants; the report groups by these strings.
inline constexpr const char* kCounterAlphaTerms = "allreduce.alpha_terms";
inline constexpr const char* kCounterBeta1Bytes = "allreduce.beta1_bytes";
inline constexpr const char* kCounterBeta2Bytes = "allreduce.beta2_bytes";
inline constexpr const char* kCounterGammaBytes = "allreduce.gamma_bytes";
inline constexpr const char* kCounterLoss = "train.loss";

}  // namespace swcaffe::trace
