#include "trace/report.h"

#include <fstream>
#include <map>
#include <ostream>

#include "base/log.h"
#include "base/table.h"
#include "base/units.h"
#include "trace/chrome_trace.h"

namespace swcaffe::trace {

Report Report::build(const Tracer& tracer, const std::string& category) {
  Report report;
  std::map<std::string, std::size_t> index;  // name -> row
  for (const Span& s : tracer.spans()) {
    const bool match =
        category.empty() ? s.depth == 0 : s.category == category;
    if (!match) continue;
    auto [it, inserted] = index.try_emplace(s.name, report.rows_.size());
    if (inserted) {
      ReportRow row;
      row.name = s.name;
      row.category = s.category;
      report.rows_.push_back(std::move(row));
    }
    ReportRow& row = report.rows_[it->second];
    ++row.count;
    row.total_s += s.duration_s();
    row.traffic.add(s.traffic);
  }
  return report;
}

double Report::total_seconds() const {
  double total = 0.0;
  for (const ReportRow& r : rows_) total += r.total_s;
  return total;
}

void Report::print(std::ostream& os) const {
  base::TablePrinter t(
      {"span", "count", "sim time", "DMA", "RLC", "net", "Gflops"});
  for (const ReportRow& r : rows_) {
    t.add_row({r.name, std::to_string(r.count),
               base::format_seconds(r.total_s),
               base::format_bytes(static_cast<double>(r.traffic.dma_bytes())),
               base::format_bytes(static_cast<double>(r.traffic.rlc_bytes)),
               base::format_bytes(static_cast<double>(r.traffic.net_bytes)),
               base::fmt(r.gflops(), 1)});
  }
  t.add_row({"TOTAL", "", base::format_seconds(total_seconds()), "", "", "",
             ""});
  t.print(os);
}

void Report::write_json(std::ostream& os) const {
  os << "{\"rows\":[";
  bool first = true;
  for (const ReportRow& r : rows_) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"" << json_escape(r.name) << "\",\"category\":\""
       << json_escape(r.category) << "\",\"count\":" << r.count
       << ",\"total_s\":" << r.total_s
       << ",\"dma_get_bytes\":" << r.traffic.dma_get_bytes
       << ",\"dma_put_bytes\":" << r.traffic.dma_put_bytes
       << ",\"rlc_bytes\":" << r.traffic.rlc_bytes
       << ",\"mpe_bytes\":" << r.traffic.mpe_bytes
       << ",\"net_bytes\":" << r.traffic.net_bytes
       << ",\"flops\":" << r.traffic.flops << ",\"gflops\":" << r.gflops()
       << "}";
  }
  os << "\n],\"total_s\":" << total_seconds() << "}\n";
}

void Report::save_json(const std::string& path) const {
  std::ofstream out(path);
  SWC_CHECK_MSG(out.good(), "cannot open report output file: " << path);
  write_json(out);
}

}  // namespace swcaffe::trace
