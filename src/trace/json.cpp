#include "trace/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace swcaffe::trace {

namespace {

const std::string kEmptyString;
const std::vector<JsonValue> kEmptyArray;
const std::vector<std::pair<std::string, JsonValue>> kEmptyObject;

}  // namespace

bool JsonValue::as_bool(bool fallback) const {
  return kind_ == Kind::kBool ? bool_ : fallback;
}

double JsonValue::as_double(double fallback) const {
  return kind_ == Kind::kNumber ? num_ : fallback;
}

std::int64_t JsonValue::as_int(std::int64_t fallback) const {
  if (kind_ != Kind::kNumber) return fallback;
  if (int_exact_) return int_;
  return static_cast<std::int64_t>(num_);
}

const std::string& JsonValue::as_string() const {
  return kind_ == Kind::kString ? str_ : kEmptyString;
}

const std::vector<JsonValue>& JsonValue::items() const {
  return kind_ == Kind::kArray ? items_ : kEmptyArray;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  return kind_ == Kind::kObject ? members_ : kEmptyObject;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.num_ = d;
  return v;
}

JsonValue JsonValue::make_int(std::int64_t i) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.num_ = static_cast<double>(i);
  v.int_ = i;
  v.int_exact_ = true;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.str_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.items_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.members_ = std::move(members);
  return v;
}

/// Recursive-descent parser over the input buffer. Depth is bounded so a
/// pathological "[[[[..." input cannot blow the stack.
class JsonParser {
 public:
  JsonParser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!parse_value(out, 0)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after document");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 128;

  bool fail(const std::string& why) {
    if (error_ && error_->empty()) {
      *error_ = "offset " + std::to_string(pos_) + ": " + why;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting deeper than 128 levels");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"': {
        std::string s;
        if (!parse_string(&s)) return false;
        *out = JsonValue::make_string(std::move(s));
        return true;
      }
      case 't':
        if (text_.compare(pos_, 4, "true") == 0) {
          pos_ += 4;
          *out = JsonValue::make_bool(true);
          return true;
        }
        return fail("expected 'true'");
      case 'f':
        if (text_.compare(pos_, 5, "false") == 0) {
          pos_ += 5;
          *out = JsonValue::make_bool(false);
          return true;
        }
        return fail("expected 'false'");
      case 'n':
        if (text_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          *out = JsonValue::make_null();
          return true;
        }
        return fail("expected 'null'");
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue* out, int depth) {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_ws();
    if (consume('}')) {
      *out = JsonValue::make_object(std::move(members));
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected string key");
      }
      if (!parse_string(&key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':' after object key");
      skip_ws();
      JsonValue value;
      if (!parse_value(&value, depth + 1)) return false;
      members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) break;
      return fail("expected ',' or '}' in object");
    }
    *out = JsonValue::make_object(std::move(members));
    return true;
  }

  bool parse_array(JsonValue* out, int depth) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    skip_ws();
    if (consume(']')) {
      *out = JsonValue::make_array(std::move(items));
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue value;
      if (!parse_value(&value, depth + 1)) return false;
      items.push_back(std::move(value));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) break;
      return fail("expected ',' or ']' in array");
    }
    *out = JsonValue::make_array(std::move(items));
    return true;
  }

  bool parse_string(std::string* out) {
    ++pos_;  // '"'
    std::string s;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        *out = std::move(s);
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        s += c;
        continue;
      }
      if (pos_ >= text_.size()) return fail("dangling escape in string");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          s += '"';
          break;
        case '\\':
          s += '\\';
          break;
        case '/':
          s += '/';
          break;
        case 'b':
          s += '\b';
          break;
        case 'f':
          s += '\f';
          break;
        case 'n':
          s += '\n';
          break;
        case 'r':
          s += '\r';
          break;
        case 't':
          s += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are passed
          // through as two 3-byte sequences — lossy but never throws, and
          // the writers here only ever escape ASCII control characters).
          if (code < 0x80) {
            s += static_cast<char>(code);
          } else if (code < 0x800) {
            s += static_cast<char>(0xC0 | (code >> 6));
            s += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            s += static_cast<char>(0xE0 | (code >> 12));
            s += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return fail("unknown escape character");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    bool digits = false;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
      digits = true;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (!digits) return fail("expected a value");
    const std::string lit = text_.substr(start, pos_ - start);
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long ll = std::strtoll(lit.c_str(), &end, 10);
      if (errno == 0 && end == lit.c_str() + lit.size()) {
        *out = JsonValue::make_int(static_cast<std::int64_t>(ll));
        return true;
      }
    }
    *out = JsonValue::make_number(std::strtod(lit.c_str(), nullptr));
    return true;
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

bool parse_json(const std::string& text, JsonValue* out, std::string* error) {
  if (error) error->clear();
  JsonParser parser(text, error);
  return parser.parse(out);
}

}  // namespace swcaffe::trace
