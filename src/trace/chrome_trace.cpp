#include "trace/chrome_trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <vector>

#include "base/log.h"

namespace swcaffe::trace {

namespace {

constexpr const char* kProcessName = "sw26010-sim";

/// Formats a double without locale surprises and with enough digits to
/// round-trip microsecond-scale simulated times.
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string traffic_args(const TrafficCounters& t) {
  std::string out = "{";
  out += "\"dma_get_bytes\":" + std::to_string(t.dma_get_bytes);
  out += ",\"dma_put_bytes\":" + std::to_string(t.dma_put_bytes);
  out += ",\"rlc_bytes\":" + std::to_string(t.rlc_bytes);
  out += ",\"mpe_bytes\":" + std::to_string(t.mpe_bytes);
  out += ",\"net_bytes\":" + std::to_string(t.net_bytes);
  out += ",\"flops\":" + num(t.flops);
  out += "}";
  return out;
}

/// One B or E event belonging to a span, for the global time sort.
struct Edge {
  double t_s;
  bool begin;
  const Span* span;
};

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_chrome_trace(const Tracer& tracer, std::ostream& os) {
  SWC_CHECK_MSG(tracer.open_spans() == 0,
                "cannot export a trace with " << tracer.open_spans()
                                              << " open span(s)");
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& event) {
    if (!first) os << ",";
    first = false;
    os << "\n" << event;
  };

  // Process/thread metadata so Perfetto shows named tracks.
  emit(std::string("{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\","
                   "\"args\":{\"name\":\"") +
       kProcessName + "\"}}");
  for (const auto& [track, name] : tracer.track_names()) {
    emit("{\"ph\":\"M\",\"pid\":0,\"tid\":" + std::to_string(track) +
         ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
         json_escape(name) + "\"}}");
  }

  // Duration events. Chrome requires each tid's B/E stream to be time-sorted
  // and stack-disciplined. At a tied timestamp the valid order is: close
  // spans that began earlier (innermost first), then zero-duration spans as
  // immediately-nested B..E pairs, then open spans that end later (outermost
  // first). Encoded as (rank, subkey) below.
  std::vector<Edge> edges;
  edges.reserve(tracer.spans().size() * 2);
  for (const Span& s : tracer.spans()) {
    edges.push_back({s.begin_s, true, &s});
    edges.push_back({s.end_s, false, &s});
  }
  auto rank = [](const Edge& e) {
    if (e.span->begin_s == e.span->end_s) return 1;  // zero-duration span
    return e.begin ? 2 : 0;
  };
  auto subkey = [&](const Edge& e) {
    switch (rank(e)) {
      case 0: return -e.span->depth;  // inner E first
      case 1:                         // B outer..inner, then E inner..outer
        return e.begin ? e.span->depth : (1 << 20) - e.span->depth;
      default: return e.span->depth;  // outer B first
    }
  };
  std::stable_sort(edges.begin(), edges.end(),
                   [&](const Edge& a, const Edge& b) {
                     if (a.t_s != b.t_s) return a.t_s < b.t_s;
                     if (rank(a) != rank(b)) return rank(a) < rank(b);
                     return subkey(a) < subkey(b);
                   });
  for (const Edge& e : edges) {
    const Span& s = *e.span;
    std::string ev = "{\"ph\":\"";
    ev += e.begin ? 'B' : 'E';
    ev += "\",\"pid\":0,\"tid\":" + std::to_string(s.track) +
          ",\"ts\":" + num(e.t_s * 1e6);
    if (e.begin) {
      ev += ",\"name\":\"" + json_escape(s.name) + "\",\"cat\":\"" +
            json_escape(s.category) + "\"";
    } else if (!s.traffic.empty()) {
      ev += ",\"args\":{\"traffic\":" + traffic_args(s.traffic) + "}";
    }
    ev += "}";
    emit(ev);
  }

  for (const CounterSample& c : tracer.counters()) {
    emit("{\"ph\":\"C\",\"pid\":0,\"tid\":" + std::to_string(c.track) +
         ",\"ts\":" + num(c.t_s * 1e6) + ",\"name\":\"" +
         json_escape(c.name) + "\",\"args\":{\"value\":" + num(c.value) +
         "}}");
  }
  for (const InstantEvent& i : tracer.instants()) {
    emit("{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":" +
         std::to_string(i.track) + ",\"ts\":" + num(i.t_s * 1e6) +
         ",\"name\":\"" + json_escape(i.name) + "\",\"cat\":\"" +
         json_escape(i.category) + "\"}");
  }
  // Async spans ("b"/"e" pairs keyed by id): overlap-tolerant intervals —
  // Perfetto gives each id its own sub-lane, so per-request queue spans that
  // coexist in time render side by side instead of violating the B/E stack.
  for (const AsyncSpan& a : tracer.async_spans()) {
    const std::string common = ",\"pid\":0,\"tid\":" + std::to_string(a.track) +
                               ",\"id\":" + std::to_string(a.id) +
                               ",\"cat\":\"" + json_escape(a.category) +
                               "\",\"name\":\"" + json_escape(a.name) + "\"";
    emit("{\"ph\":\"b\",\"ts\":" + num(a.begin_s * 1e6) + common + "}");
    emit("{\"ph\":\"e\",\"ts\":" + num(a.end_s * 1e6) + common + "}");
  }
  os << "\n]}\n";
}

void save_chrome_trace(const Tracer& tracer, const std::string& path) {
  std::ofstream out(path);
  SWC_CHECK_MSG(out.good(), "cannot open trace output file: " << path);
  write_chrome_trace(tracer, out);
}

}  // namespace swcaffe::trace
