// Minimal recursive-descent JSON reader for the trace/check tool surface.
//
// The repo writes JSON in two places (Chrome traces, swsched timeline
// exports) but until now could not read any back. This parser covers the
// full JSON grammar with a single DOM-style value type — enough to ingest a
// timeline export or pick numbers out of a config — while staying
// dependency-free (the container bakes no JSON library and the simulator
// must not grow one).
//
// Numbers are held as double (plus a faithful int64 view when the literal
// was integral and in range); object member order is preserved so writers
// can round-trip deterministically.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace swcaffe::trace {

/// One JSON value (null / bool / number / string / array / object).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool(bool fallback = false) const;
  double as_double(double fallback = 0.0) const;
  std::int64_t as_int(std::int64_t fallback = 0) const;
  const std::string& as_string() const;  ///< empty string when not a string

  /// Array access; empty for non-arrays.
  const std::vector<JsonValue>& items() const;
  /// Object members in source order; empty for non-objects.
  const std::vector<std::pair<std::string, JsonValue>>& members() const;
  /// First member named `key`, or nullptr (also for non-objects).
  const JsonValue* find(const std::string& key) const;

  static JsonValue make_null() { return JsonValue{}; }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double d);
  static JsonValue make_int(std::int64_t i);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  friend class JsonParser;
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::int64_t int_ = 0;
  bool int_exact_ = false;  ///< the literal was integral and fits int64
  std::string str_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses `text` as one JSON document. On failure returns false and fills
/// `error` (when non-null) with "offset N: reason". Trailing whitespace is
/// allowed; trailing garbage is an error.
bool parse_json(const std::string& text, JsonValue* out,
                std::string* error = nullptr);

}  // namespace swcaffe::trace
