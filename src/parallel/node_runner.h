// Single-node multi-core-group training (paper Algorithm 1 / Fig. 5):
// 4 threads, one per core group, each runs forward/backward on 1/4 of the
// mini-batch against its own model replica (core groups have private memory
// spaces); a handshake barrier synchronizes them and CG0 averages the four
// gradient sets.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/net.h"
#include "trace/tracer.h"

namespace swcaffe::parallel {

/// The paper's "Simple_Sync()": an initiation-confirmation handshake barrier
/// built on a shared-memory semaphore (here: mutex + condvar).
class SimpleSync {
 public:
  explicit SimpleSync(int parties);
  /// Blocks until all parties arrive; reusable across rounds.
  void arrive_and_wait();

 private:
  int parties_;
  int arrived_ = 0;
  std::int64_t generation_ = 0;
  std::mutex mu_;
  std::condition_variable cv_;
};

class NodeRunner {
 public:
  /// `spec` must take the PER-CORE-GROUP sub-batch (mini-batch / num_cgs)
  /// and declare "data"/"label" inputs. All replicas start from identical
  /// parameters.
  NodeRunner(const core::NetSpec& spec, int num_core_groups = 4,
             std::uint64_t seed = 1);

  /// One gradient computation: splits the node's mini-batch over the core
  /// groups (threads), barriers, and averages gradients into the master
  /// replica's diffs. Returns the mean loss. `data`/`labels` hold the full
  /// node mini-batch.
  double compute_gradients(std::span<const float> data,
                           std::span<const float> labels);

  /// Replica 0; its params/diffs are the node's canonical state.
  core::Net& master() { return *nets_[0]; }
  core::Net& replica(int cg) { return *nets_[cg]; }
  int num_core_groups() const { return static_cast<int>(nets_.size()); }

  /// Pushes master's (post-update) parameters to the other core groups.
  void broadcast_params();

  /// Attaches an optional tracer. Each compute_gradients() then emits one
  /// "forward_backward" span per core group on tracks base_track..+CGs-1
  /// (aligned to the node track's clock; all CGs run concurrently for
  /// `sim_iter_seconds` of simulated time, Algorithm 1), and marks the CG0
  /// gradient average and the parameter broadcast as instants on the node
  /// track. Purely observational — the functional math is unchanged.
  void set_tracer(trace::Tracer* tracer, double sim_iter_seconds,
                  int node_track = 0, int base_track = 1);

  /// Fault-injection site: per-core-group compute slowdown factors (>= 1,
  /// missing entries mean 1). The handshake barrier waits for the slowest
  /// CG, so the simulated iteration time stretches to max(factor); traced
  /// "forward_backward" spans stretch individually. Gradient math is
  /// unchanged — a slow CG computes the same numbers, later.
  void set_cg_slowdowns(std::vector<double> factors);

  /// Simulated duration of the last compute_gradients() (slowest CG),
  /// sim_iter_seconds * max slowdown. 0 before any traced iteration.
  double last_iter_seconds() const { return last_iter_seconds_; }

 private:
  double cg_slowdown(int cg) const {
    return cg < static_cast<int>(cg_slowdowns_.size()) ? cg_slowdowns_[cg]
                                                       : 1.0;
  }

  std::vector<std::unique_ptr<core::Net>> nets_;
  trace::Tracer* tracer_ = nullptr;
  double sim_iter_seconds_ = 0.0;
  double last_iter_seconds_ = 0.0;
  int node_track_ = 0;
  int base_track_ = 1;
  std::vector<double> cg_slowdowns_;
};

}  // namespace swcaffe::parallel
