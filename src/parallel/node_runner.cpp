#include "parallel/node_runner.h"

#include <algorithm>
#include <string>
#include <thread>

#include "base/log.h"
#include "check/verify.h"

namespace swcaffe::parallel {

SimpleSync::SimpleSync(int parties) : parties_(parties) {
  SWC_CHECK_GT(parties, 0);
}

void SimpleSync::arrive_and_wait() {
  std::unique_lock<std::mutex> lock(mu_);
  const std::int64_t gen = generation_;
  if (++arrived_ == parties_) {
    arrived_ = 0;
    ++generation_;
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [&] { return generation_ != gen; });
}

NodeRunner::NodeRunner(const core::NetSpec& spec, int num_core_groups,
                       std::uint64_t seed) {
  SWC_CHECK_GT(num_core_groups, 0);
  for (int i = 0; i < num_core_groups; ++i) {
    nets_.push_back(std::make_unique<core::Net>(spec, seed));
  }
  for (int i = 1; i < num_core_groups; ++i) {
    nets_[i]->copy_params_from(*nets_[0]);
  }
#ifndef NDEBUG
  // Debug builds statically verify the plans all core groups are about to
  // execute (every CG runs the same net, so checking the master suffices).
  const check::Report report =
      check::verify_net(hw::CostModel{}, nets_[0]->describe());
  SWC_CHECK_MSG(report.ok(), "swcheck rejected the net: " << report.summary());
#endif
}

double NodeRunner::compute_gradients(std::span<const float> data,
                                     std::span<const float> labels) {
  const int cgs = num_core_groups();
  const std::size_t data_per_cg = nets_[0]->blob("data")->count();
  const std::size_t labels_per_cg = nets_[0]->blob("label")->count();
  SWC_CHECK_EQ(data.size(), data_per_cg * cgs);
  SWC_CHECK_EQ(labels.size(), labels_per_cg * cgs);

  std::vector<double> losses(cgs, 0.0);
  SimpleSync sync(cgs);
  // Paper Fig. 5: pthread_create at iteration start, join at the end; the
  // handshake barrier marks "all gradients ready" before CG0 reduces.
  std::vector<std::thread> threads;
  threads.reserve(cgs);
  for (int cg = 0; cg < cgs; ++cg) {
    threads.emplace_back([&, cg] {
      core::Net& net = *nets_[cg];
      const auto d = net.blob("data")->data();
      const auto l = net.blob("label")->data();
      std::copy_n(data.begin() + cg * data_per_cg, data_per_cg, d.begin());
      std::copy_n(labels.begin() + cg * labels_per_cg, labels_per_cg,
                  l.begin());
      losses[cg] = net.forward_backward();
      sync.arrive_and_wait();
      if (cg == 0) {
        // CG0 sums the replicas' gradients (Algorithm 1 line 8).
        const std::size_t n = net.param_count();
        std::vector<float> acc(n), other(n);
        net.pack_param_diffs(acc);
        for (int j = 1; j < cgs; ++j) {
          nets_[j]->pack_param_diffs(other);
          for (std::size_t i = 0; i < n; ++i) acc[i] += other[i];
        }
        const float inv = 1.0f / cgs;
        for (auto& v : acc) v *= inv;
        net.unpack_param_diffs(acc);
      }
      sync.arrive_and_wait();
    });
  }
  for (auto& t : threads) t.join();

  double max_factor = 1.0;
  for (int cg = 0; cg < cgs; ++cg) {
    max_factor = std::max(max_factor, cg_slowdown(cg));
  }
  last_iter_seconds_ = sim_iter_seconds_ * max_factor;

  if (tracer_ != nullptr) {
    // All CGs run the same net on the same sub-batch size, so they advance
    // in lockstep for sim_iter_seconds_ starting at the node clock — unless
    // a fault spec slows some down, in which case the barrier holds until
    // the slowest finishes.
    const double t0 = tracer_->now(node_track_);
    for (int cg = 0; cg < cgs; ++cg) {
      const int track = base_track_ + cg;
      tracer_->set_clock(track, t0);
      tracer_->begin_span(track, "forward_backward", "train.cg");
      tracer_->end_span(track, sim_iter_seconds_ * cg_slowdown(cg));
    }
    // CG0 averages after the barrier; its clock is now at iteration end.
    tracer_->set_clock(base_track_, t0 + last_iter_seconds_);
    tracer_->instant(base_track_, "grad.average", "train.phase");
  }

  double loss = 0.0;
  for (double l : losses) loss += l;
  return loss / cgs;
}

void NodeRunner::broadcast_params() {
  for (int i = 1; i < num_core_groups(); ++i) {
    nets_[i]->copy_params_from(*nets_[0]);
  }
  if (tracer_ != nullptr) {
    tracer_->instant(base_track_, "params.broadcast", "train.phase");
  }
}

void NodeRunner::set_cg_slowdowns(std::vector<double> factors) {
  for (double f : factors) SWC_CHECK_GE(f, 1.0);
  cg_slowdowns_ = std::move(factors);
}

void NodeRunner::set_tracer(trace::Tracer* tracer, double sim_iter_seconds,
                            int node_track, int base_track) {
  tracer_ = tracer;
  sim_iter_seconds_ = sim_iter_seconds;
  node_track_ = node_track;
  base_track_ = base_track;
  if (tracer_ != nullptr) {
    for (int cg = 0; cg < num_core_groups(); ++cg) {
      tracer_->set_track_name(base_track_ + cg, "cg" + std::to_string(cg));
    }
  }
}

}  // namespace swcaffe::parallel
