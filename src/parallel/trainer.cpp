#include "parallel/trainer.h"

#include <algorithm>

#include "base/log.h"
#include "check/verify.h"
#include "swdnn/layer_estimate.h"
#include "tune/tuner.h"

namespace swcaffe::parallel {

Trainer::Trainer(const core::NetSpec& spec, const core::SolverSpec& solver,
                 const io::DatasetSpec& dataset, const io::DiskParams& disk,
                 const TrainOptions& options)
    : options_(options), eval_data_(dataset) {
  SWC_CHECK_GT(options_.max_iter, 0);
  runner_ = std::make_unique<NodeRunner>(spec, options_.num_core_groups);
  solver_ = std::make_unique<core::SgdSolver>(runner_->master(), solver);
  const int node_batch =
      runner_->master().blob("label")->dim(0) * options_.num_core_groups;
  prefetcher_ = std::make_unique<io::Prefetcher>(
      dataset, disk, options_.file_layout, node_batch, /*rank=*/0,
      /*num_procs=*/1);
  // One core group's simulated compute per iteration (Algorithm 1: the four
  // CGs run concurrently, so this IS the node's compute time).
  descs_ = runner_->master().describe();
  // Pre-validate every kernel plan the simulation will run (swcheck): a
  // violated hardware contract surfaces here as one structured report
  // instead of an Ldm::alloc throw mid-iteration.
  const check::Report report = check::verify_net(cost_, descs_);
  if (!report.empty()) {
    SWC_LOG(kWarning, "swcheck: " << report.summary());
  }
#ifndef NDEBUG
  SWC_CHECK_MSG(report.ok(), "swcheck rejected the net: " << report.summary());
#endif
  sim_compute_default_ = dnn::estimate_net_sw(cost_, descs_);
  sim_compute_per_iter_ = sim_compute_default_;
  if (options_.tune) {
    // swtune: search the plan space per conv layer (or hit the cache), then
    // switch every replica onto the tuned strategies so the functional run
    // and the timing model agree on what executes.
    tune::TuneOptions topts;
    topts.cache_path = options_.plan_cache;
    topts.tracer = options_.tracer;
    topts.trace_track = 0;
    tune::Tuner tuner(cost_, topts);
    const tune::NetPlan plan = tuner.tune_net(descs_);
    std::string cache_error;
    if (!tuner.save_cache(&cache_error)) {
      SWC_LOG(kWarning, "swtune: " << cache_error);
    }
    overrides_ = plan.overrides();
    const auto assignments = plan.assignments();
    for (int cg = 0; cg < runner_->num_core_groups(); ++cg) {
      runner_->replica(cg).apply_conv_plans(assignments);
    }
    sim_compute_per_iter_ = dnn::estimate_net_sw(cost_, descs_, overrides_);
    SWC_LOG(kInfo, "swtune: " << plan.convs.size() << " conv layers, "
                              << tuner.stats().cache_hits << " cache hits, "
                              << "compute/iter " << sim_compute_default_
                              << "s -> " << sim_compute_per_iter_ << "s");
  }
  if (options_.tracer != nullptr) {
    options_.tracer->set_track_name(0, "node");
    runner_->set_tracer(options_.tracer, sim_compute_per_iter_,
                        /*node_track=*/0, /*base_track=*/1);
  }
}

double Trainer::evaluate(int batches) {
  core::Net& net = runner_->master();
  net.set_phase(core::Phase::kTest);
  const tensor::Tensor& data_blob = *net.blob("data");
  const int batch = data_blob.dim(0);
  const std::size_t img = data_blob.count() / batch;
  std::vector<float> image;
  int hits = 0, total = 0;
  std::int64_t index = 1;  // deterministic eval stream
  for (int bi = 0; bi < batches; ++bi) {
    const auto d = net.blob("data")->data();
    const auto l = net.blob("label")->data();
    for (int b = 0; b < batch; ++b) {
      eval_data_.fill_image(index % eval_data_.spec().num_samples, image);
      std::copy(image.begin(), image.end(), d.begin() + b * img);
      l[b] = static_cast<float>(
          eval_data_.label_of(index % eval_data_.spec().num_samples));
      index += 17;
    }
    net.forward();
    // Argmax over whichever blob feeds the loss: use "scores" if present.
    const char* score_blob = net.has_blob("scores") ? "scores" : "fc8";
    if (!net.has_blob(score_blob)) {
      net.set_phase(core::Phase::kTrain);
      return 0.0;  // no conventional score blob; skip accuracy
    }
    const tensor::Tensor& scores = *net.blob(score_blob);
    const int classes = static_cast<int>(scores.count()) / batch;
    for (int b = 0; b < batch; ++b) {
      int best = 0;
      for (int c = 1; c < classes; ++c) {
        if (scores.data()[b * classes + c] > scores.data()[b * classes + best]) {
          best = c;
        }
      }
      hits += best == static_cast<int>(l[b]);
      ++total;
    }
  }
  net.set_phase(core::Phase::kTrain);
  return total > 0 ? static_cast<double>(hits) / total : 0.0;
}

TrainStats Trainer::run() {
  TrainStats stats;
  stats.compute_per_iter_seconds = sim_compute_per_iter_;
  stats.default_compute_per_iter_seconds = sim_compute_default_;
  trace::Tracer* const tracer = options_.tracer;
  for (int iter = 0; iter < options_.max_iter; ++iter) {
    const io::Batch batch = prefetcher_->pop();
    double iter_t0 = 0.0;
    if (tracer != nullptr) {
      iter_t0 = tracer->now(0);
      tracer->begin_span(0, "iteration", "train.iteration");
    }
    const double loss = runner_->compute_gradients(batch.images, batch.labels);
    solver_->apply_update();
    runner_->broadcast_params();
    if (tracer != nullptr) {
      // Per-layer detail: replay the layer estimator with a traced copy of
      // the cost model. The replay is deterministic, so the layer spans sum
      // to sim_compute_per_iter_ (up to association order; snapped below).
      tracer->begin_span(0, "compute", "train.phase");
      hw::CostModel traced = cost_;
      traced.set_tracer(tracer, 0);
      dnn::estimate_net_sw(traced, descs_, overrides_);
      const double compute_end = iter_t0 + sim_compute_per_iter_;
      if (compute_end > tracer->now(0)) tracer->set_clock(0, compute_end);
      tracer->end_span(0);
      if (batch.simulated_read_s > sim_compute_per_iter_) {
        tracer->begin_span(0, "io.exposed", "train.io");
        tracer->end_span(0, batch.simulated_read_s - sim_compute_per_iter_);
      }
      tracer->counter(0, trace::kCounterLoss, loss);
      tracer->end_span(0);  // iteration
    }

    // Simulated node time: prefetch overlaps I/O with the previous
    // iteration's compute, so the exposed I/O is only the excess.
    stats.simulated_seconds +=
        std::max(sim_compute_per_iter_, batch.simulated_read_s);
    stats.simulated_io_seconds +=
        std::max(0.0, batch.simulated_read_s - sim_compute_per_iter_);
    stats.final_loss = loss;
    ++stats.iterations;

    if (options_.display_every > 0 && iter % options_.display_every == 0) {
      stats.losses.push_back(loss);
      SWC_LOG(kInfo, "iter " << iter << " loss " << loss << " lr "
                             << solver_->current_lr());
    }
    if (options_.test_every > 0 && (iter + 1) % options_.test_every == 0) {
      stats.test_accuracy.push_back(evaluate(options_.test_batches));
    }
    if (options_.snapshot_every > 0 &&
        (iter + 1) % options_.snapshot_every == 0) {
      solver_->snapshot(options_.snapshot_prefix + "_iter_" +
                        std::to_string(iter + 1) + ".snap");
    }
  }
  return stats;
}

}  // namespace swcaffe::parallel
