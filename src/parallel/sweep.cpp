#include "parallel/sweep.h"

#include "base/log.h"
#include "check/rules.h"
#include "check/timeline_extract.h"
#include "sim/thread_pool.h"
#include "topo/hierarchical.h"

namespace swcaffe::parallel {

SeriesTiming prepare_series(
    const hw::CostModel& cost, const std::vector<core::LayerDesc>& descs_per_cg,
    std::int64_t param_bytes, const SsgdOptions& options,
    const std::map<std::string, dnn::ConvEstimate>* conv_overrides) {
  static const std::map<std::string, dnn::ConvEstimate> kNoOverrides;
  SeriesTiming st;
  st.timeline = dnn::estimate_net_timeline(
      cost, descs_per_cg, conv_overrides ? *conv_overrides : kNoOverrides);

  // Bucket the packed message along the descriptors' parameter layout; the
  // descriptors may describe a sub-batch replica of the same architecture,
  // so the per-layer bytes are rescaled to sum exactly to `param_bytes`.
  std::vector<std::int64_t> layer_bytes;
  layer_bytes.reserve(descs_per_cg.size());
  for (const auto& d : descs_per_cg) layer_bytes.push_back(d.param_bytes());
  layer_bytes = topo::scale_layer_bytes(layer_bytes, param_bytes);
  st.buckets = topo::make_buckets(layer_bytes, options.buckets);
  return st;
}

ScalePoint price_scale_point(const SeriesTiming& series,
                             std::int64_t param_bytes,
                             const SsgdOptions& options, int nodes) {
  const double comp = series.timeline.total_s;
  topo::Topology topo;
  topo.num_nodes = nodes;
  topo.supernode_size = options.supernode_size;
  // swcheck: the direct rule (not the full phase-composition verifier —
  // the curve runs to 40,960 nodes, where materializing the hierarchical
  // schedules would dwarf the pricing itself). Illegal algorithm x
  // compression combos are rejected before any cost is computed.
  check::CommPlan cplan;
  cplan.name = "scalability-comm";
  cplan.algorithm = allreduce_algo_name(options.algo);
  cplan.compression = topo::compression_name(options.compression);
  cplan.num_nodes = nodes;
  cplan.supernode_size = options.supernode_size;
  cplan.buckets = static_cast<int>(series.buckets.size());
  cplan.raw_bytes = param_bytes;
  check::Report creport;
  check::check_comm(cplan, check::Options{}, cplan.name, &creport);
  SWC_CHECK_MSG(creport.ok(), "swcheck rejected the comm config at "
                                  << nodes << " nodes: " << creport.summary());
  // Wire pricing: the raw gradient bytes pass through the codec (priced at
  // memory bandwidth) and the collective moves the compressed bytes. With
  // kNone the wrapper is the identity, so this is the single path for
  // both series.
  const auto raw_cost = [&](std::int64_t bytes) -> topo::CostBreakdown {
    switch (options.algo) {
      case AllreduceAlgo::kRhdAdjacent:
        return topo::cost_rhd(bytes, topo, options.net,
                              topo::Placement::kAdjacent);
      case AllreduceAlgo::kRhdRoundRobin:
        return topo::cost_rhd(bytes, topo, options.net,
                              topo::Placement::kRoundRobin);
      case AllreduceAlgo::kRing:
        return topo::cost_ring(bytes, topo, options.net,
                               topo::Placement::kAdjacent);
      case AllreduceAlgo::kParamServer:
        return topo::cost_param_server(bytes, topo, options.net,
                                       options.param_servers);
      case AllreduceAlgo::kHierarchical:
        return topo::cost_hierarchical(bytes, topo, options.net);
    }
    return {};
  };
  const auto bucket_cost = [&](std::int64_t bytes) -> topo::CostBreakdown {
    return topo::cost_compressed(options.compression, bytes, options.net,
                                 raw_cost);
  };
  const topo::CostBreakdown comm = bucket_cost(param_bytes);
  const topo::OverlapTimeline overlap = topo::schedule_overlap(
      series.buckets, series.timeline.bwd_s, comp, bucket_cost);
  // swsched: every overlapped timeline the curve reports must verify
  // silent before its numbers are trusted.
  const check::Report treport = check::verify_timeline(
      check::timeline_from_overlap("scalability-overlap", series.timeline.bwd_s,
                                   comp, overlap, param_bytes));
  SWC_CHECK_MSG(treport.ok(), "swsched rejected the overlap timeline at "
                                  << nodes << " nodes: " << treport.summary());
  ScalePoint pt;
  pt.nodes = nodes;
  pt.comp_s = comp;
  pt.comm_s = comm.seconds;
  pt.speedup = nodes * comp / (comp + comm.seconds);
  pt.comm_fraction = comm.seconds / (comp + comm.seconds);
  pt.overlap_s = overlap.finish_s;
  pt.exposed_comm_s = overlap.exposed_comm_s;
  pt.overlap_speedup = nodes * comp / overlap.finish_s;
  pt.buckets = static_cast<int>(series.buckets.size());
  return pt;
}

std::vector<SweepResult> scalability_sweep(const hw::CostModel& cost,
                                           const std::vector<SweepSeries>& series,
                                           int threads) {
  SWC_CHECK_GT(threads, 0);
  std::vector<SweepResult> out(series.size());
  std::vector<SeriesTiming> prep(series.size());
  for (std::size_t s = 0; s < series.size(); ++s) {
    out[s].label = series[s].label;
    out[s].points.resize(series[s].node_counts.size());
    prep[s] = prepare_series(cost, series[s].descs_per_cg,
                             series[s].param_bytes, series[s].options,
                             series[s].conv_overrides);
  }
  // Flatten to independent (series, node) jobs. Each job reads only the
  // prepared series state and writes its own index-order slot, so the fan
  // is race-free and the results carry no trace of the thread count.
  struct Job {
    std::size_t series = 0;
    std::size_t point = 0;
  };
  std::vector<Job> jobs;
  for (std::size_t s = 0; s < series.size(); ++s) {
    for (std::size_t k = 0; k < series[s].node_counts.size(); ++k) {
      jobs.push_back({s, k});
    }
  }
  sim::simulate_actors(static_cast<int>(jobs.size()), threads, [&](int j) {
    const Job& job = jobs[static_cast<std::size_t>(j)];
    const SweepSeries& ss = series[job.series];
    out[job.series].points[job.point] = price_scale_point(
        prep[job.series], ss.param_bytes, ss.options,
        ss.node_counts[job.point]);
  });
  return out;
}

}  // namespace swcaffe::parallel
