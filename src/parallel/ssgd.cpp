#include "parallel/ssgd.h"

#include <algorithm>
#include <string_view>

#include "base/log.h"
#include "check/rules.h"
#include "check/timeline_extract.h"
#include "check/verify.h"
#include "parallel/sweep.h"
#include "sim/event.h"
#include "swdnn/layer_estimate.h"
#include "topo/hierarchical.h"

namespace swcaffe::parallel {

namespace {

/// Tracer span name of each collective (matches what the topo functional
/// variants emit, so the compressed path's manual span is indistinguishable
/// from an uncompressed run of the same algorithm).
const char* trace_span_name(AllreduceAlgo algo) {
  switch (algo) {
    case AllreduceAlgo::kRhdAdjacent:
    case AllreduceAlgo::kRhdRoundRobin:
      return "allreduce.rhd";
    case AllreduceAlgo::kRing:
      return "allreduce.ring";
    case AllreduceAlgo::kParamServer:
      return "allreduce.param_server";
    case AllreduceAlgo::kHierarchical:
      return "allreduce.hier";
  }
  return "allreduce";
}

}  // namespace

const char* allreduce_algo_name(AllreduceAlgo algo) {
  switch (algo) {
    case AllreduceAlgo::kRhdAdjacent:
      return "rhd-adjacent";
    case AllreduceAlgo::kRhdRoundRobin:
      return "rhd-round-robin";
    case AllreduceAlgo::kRing:
      return "ring";
    case AllreduceAlgo::kParamServer:
      return "param-server";
    case AllreduceAlgo::kHierarchical:
      return "hierarchical";
  }
  return "?";
}

bool allreduce_algo_from_name(const char* name, AllreduceAlgo* out) {
  const std::string_view n = name ? name : "";
  for (AllreduceAlgo algo :
       {AllreduceAlgo::kRhdAdjacent, AllreduceAlgo::kRhdRoundRobin,
        AllreduceAlgo::kRing, AllreduceAlgo::kParamServer,
        AllreduceAlgo::kHierarchical}) {
    if (n == allreduce_algo_name(algo)) {
      *out = algo;
      return true;
    }
  }
  return false;
}

topo::Placement placement_for(AllreduceAlgo algo) {
  switch (algo) {
    case AllreduceAlgo::kRhdAdjacent:
    case AllreduceAlgo::kRing:
    case AllreduceAlgo::kParamServer:
      return topo::Placement::kAdjacent;
    case AllreduceAlgo::kRhdRoundRobin:
    // The hierarchical algorithm's two-level phase structure is exactly the
    // improved RHD butterfly under round-robin placement, so a gang laid out
    // round-robin serves both (and the flat fallback is bit-identical).
    case AllreduceAlgo::kHierarchical:
      return topo::Placement::kRoundRobin;
  }
  return topo::Placement::kAdjacent;
}

SsgdTrainer::SsgdTrainer(const core::NetSpec& spec, int num_nodes,
                         const core::SolverSpec& solver,
                         const SsgdOptions& options, std::uint64_t seed)
    : options_(options) {
  SWC_CHECK_GT(num_nodes, 0);
  SWC_CHECK_GT(options.buckets, 0);
  SWC_CHECK_GT(options.threads, 0);
  topo_.num_nodes = num_nodes;
  topo_.supernode_size = options.supernode_size;
  // Topology placement depends only on the configured algorithm; computed
  // once here and reused by every allreduce() call.
  placement_ = placement_for(options_.algo);
  // Timing-only mode materializes one prototype replica: the bucket layout
  // and its verification read the live layers, but no gradients ever move.
  const int replicas = options_.timing_only ? 1 : num_nodes;
  for (int i = 0; i < replicas; ++i) {
    nets_.push_back(std::make_unique<core::Net>(spec, seed));
  }
  for (int i = 1; i < replicas; ++i) nets_[i]->copy_params_from(*nets_[0]);
  for (int i = 0; i < replicas; ++i) {
    solvers_.push_back(std::make_unique<core::SgdSolver>(*nets_[i], solver));
  }

  // Bucket layout over the replica's LIVE layers (pack_param_diffs packs in
  // layer order, so cumulative per-layer counts are exactly the bucket
  // offsets into the packed message).
  std::vector<std::int64_t> layer_bytes;
  std::vector<std::size_t> layer_offset;  // float offset of each layer
  std::size_t off = 0;
  for (const auto& l : nets_[0]->layers()) {
    std::int64_t count = 0;
    for (const auto& p : l->params()) count += p->count();
    layer_offset.push_back(off);
    layer_bytes.push_back(count * 4);
    off += static_cast<std::size_t>(count);
  }
  SWC_CHECK_EQ(off, nets_[0]->param_count());
  buckets_ = topo::make_buckets(layer_bytes, options_.buckets);
  for (const auto& b : buckets_) {
    bucket_offset_.push_back(layer_offset[b.first_layer]);
  }
  last_comm_buckets_.resize(buckets_.size());

  // swcheck: the layout must tile the layers in order and conserve the
  // packed-message bytes (a broken layout would silently corrupt slices).
  check::BucketPlan plan;
  plan.name = "ssgd-buckets";
  plan.num_layers = static_cast<int>(layer_bytes.size());
  plan.total_bytes = static_cast<std::int64_t>(nets_[0]->param_count()) * 4;
  plan.eager_limit = options_.net.eager_limit;
  for (const auto& b : buckets_) {
    plan.buckets.push_back({b.first_layer, b.last_layer, b.bytes});
  }
  const check::Report report = check::verify_buckets(plan);
  SWC_CHECK_MSG(report.ok(),
                "swcheck rejected the bucket layout: " << report.summary());

  // swsched: schedule the layout's collectives against a unit-time backward
  // pass and verify the whole timeline — network exclusivity, per-gradient
  // happens-before, packed-byte conservation. Structural, not priced: any
  // schedule_overlap invariant break or layout/edge mismatch fails
  // construction before an iteration runs.
  const std::vector<double> unit_bwd(layer_bytes.size(), 1.0);
  const double unit_compute = 2.0 * static_cast<double>(layer_bytes.size());
  const topo::OverlapTimeline overlap = topo::schedule_overlap(
      buckets_, unit_bwd, unit_compute, [](std::int64_t bytes) {
        topo::CostBreakdown c;
        c.seconds = 1e-6 + static_cast<double>(bytes) * 1e-9;
        c.alpha_terms = 1;
        return c;
      });
  const check::Report treport = check::verify_timeline(
      check::timeline_from_overlap("ssgd-overlap", unit_bwd, unit_compute,
                                   overlap, plan.total_bytes));
  SWC_CHECK_MSG(treport.ok(),
                "swsched rejected the overlap timeline: " << treport.summary());

  // swcheck: algorithm x compression legality plus wire-byte conservation
  // (each bucket's claimed wire bytes must follow from the codec and the
  // bucket's raw bytes — a mismatch means the pricing is lying about what
  // goes on the network).
  check::CommPlan cplan;
  cplan.name = "ssgd-comm";
  cplan.algorithm = allreduce_algo_name(options_.algo);
  cplan.compression = topo::compression_name(options_.compression);
  // verify_comm expands the hierarchical algorithm into its full per-node
  // message schedule and race-checks the whole timeline — superlinear in
  // the node count, which at full-machine counts (40,960) is exactly the
  // cost the timing-only fast path exists to avoid. The schedule invariants
  // are per-phase-structure, not per-count, so past the cap verify a
  // representative sub-machine: the largest supernode multiple within the
  // cap when the real topology engages the two-level algorithm (keeping
  // its phase structure engaged in the verified plan too), the cap itself
  // otherwise. The byte math (raw vs wire) stays the real, uncapped one.
  constexpr int kVerifyNodeCap = 2048;
  int verify_nodes = num_nodes;
  if (verify_nodes > kVerifyNodeCap) {
    const int q = options_.supernode_size;
    if (topo::hierarchical_applicable(topo_) && q < kVerifyNodeCap) {
      verify_nodes = (kVerifyNodeCap / q) * q;
    } else {
      verify_nodes = kVerifyNodeCap;
    }
  }
  cplan.num_nodes = verify_nodes;
  cplan.supernode_size = options_.supernode_size;
  cplan.buckets = num_buckets();
  cplan.raw_bytes = plan.total_bytes;
  cplan.wire_bytes = 0;
  for (const auto& b : buckets_) {
    cplan.wire_bytes += topo::wire_bytes(options_.compression, b.bytes);
  }
  const check::Report creport = check::verify_comm(cplan);
  SWC_CHECK_MSG(creport.ok(),
                "swcheck rejected the comm config: " << creport.summary());

  if (options_.compression != topo::Compression::kNone) {
    // One persistent residual vector per node; zero-initialized, carried
    // across iterations by ef_encode. Timing-only mode never encodes, so it
    // skips the (num_nodes x param_count) allocation but still verifies the
    // error-feedback dataflow below.
    if (!options_.timing_only) {
      residual_.assign(static_cast<std::size_t>(num_nodes),
                       std::vector<float>(nets_[0]->param_count(), 0.0f));
    }
    // swsched: the error-feedback dataflow (encode writes the residual each
    // iteration, next iteration's encode reads it) must form a causal chain
    // per bucket and conserve the compressed wire bytes.
    std::vector<std::int64_t> bucket_wire;
    for (const auto& b : buckets_) {
      bucket_wire.push_back(topo::wire_bytes(options_.compression, b.bytes));
    }
    const check::Report ereport = check::verify_timeline(
        check::timeline_from_ef("ssgd-ef", 3, bucket_wire));
    SWC_CHECK_MSG(ereport.ok(), "swsched rejected the error-feedback timeline: "
                                    << ereport.summary());
  }

  if (options_.threads > 1 && !options_.timing_only) {
    pool_ = std::make_unique<ThreadPool>(
        std::min(options_.threads, num_nodes));
  }
}

double SsgdTrainer::step(std::span<const float> data,
                         std::span<const float> labels) {
  std::vector<std::vector<float>> grads(num_nodes());
  const double loss = forward_backward_packed(data, labels, grads);
  allreduce(grads);
  apply(grads);
  return loss;
}

double SsgdTrainer::forward_backward_packed(
    std::span<const float> data, std::span<const float> labels,
    std::vector<std::vector<float>>& grads) {
  SWC_CHECK_MSG(!options_.timing_only,
                "timing-only trainer has no replica tensors; use "
                "price_iteration()");
  const int p = num_nodes();
  const std::size_t data_per_node = nets_[0]->blob("data")->count();
  const std::size_t labels_per_node = nets_[0]->blob("label")->count();
  SWC_CHECK_EQ(data.size(), data_per_node * p);
  SWC_CHECK_EQ(labels.size(), labels_per_node * p);
  SWC_CHECK_EQ(grads.size(), static_cast<std::size_t>(p));

  const std::size_t n = nets_[0]->param_count();
  // Replicas are independent (each body touches only replica r's net and
  // buffers), so the loop runs on the worker pool when configured. Losses
  // land in per-replica slots and are summed in index order after the join,
  // so the result is bit-identical to the serial loop for any thread count.
  std::vector<double> losses(p, 0.0);
  auto body = [&](int r) {
    core::Net& net = *nets_[r];
    const auto d = net.blob("data")->data();
    const auto l = net.blob("label")->data();
    std::copy_n(data.begin() + r * data_per_node, data_per_node, d.begin());
    std::copy_n(labels.begin() + r * labels_per_node, labels_per_node,
                l.begin());
    losses[r] = net.forward_backward();
    // Pack ALL layers' gradients into one message (Sec. V-A: per-layer
    // messages waste both network and memory bandwidth on small layers).
    grads[r].resize(n);
    net.pack_param_diffs(grads[r]);
  };
  if (pool_) {
    pool_->parallel_for(0, p, body);
  } else {
    for (int r = 0; r < p; ++r) body(r);
  }
  double loss = 0.0;
  for (int r = 0; r < p; ++r) loss += losses[r];
  return loss / p;
}

const topo::CostBreakdown& SsgdTrainer::allreduce(
    std::vector<std::vector<float>>& grads) {
  // Network service order: backward produces the highest layers' gradients
  // first, so the last bucket goes on the wire first (matches the analytic
  // schedule in topo::schedule_overlap).
  for (int b = num_buckets() - 1; b >= 0; --b) allreduce_bucket(grads, b);
  return last_comm_;
}

const topo::CostBreakdown& SsgdTrainer::allreduce_bucket(
    std::vector<std::vector<float>>& grads, int b) {
  SWC_CHECK_MSG(!options_.timing_only,
                "timing-only trainer has no replica tensors; use "
                "price_iteration()");
  const int p = num_nodes();
  SWC_CHECK_EQ(grads.size(), static_cast<std::size_t>(p));
  SWC_CHECK_GE(b, 0);
  SWC_CHECK_LT(b, num_buckets());
  const std::size_t offset = bucket_offset_[b];
  const std::size_t count =
      static_cast<std::size_t>(buckets_[b].bytes) / sizeof(float);
  std::vector<std::span<float>> slices;
  slices.reserve(p);
  for (int r = 0; r < p; ++r) {
    SWC_CHECK_EQ(grads[r].size(), nets_[0]->param_count());
    slices.push_back(std::span<float>(grads[r]).subspan(offset, count));
  }
  // Compress at the source: every node quantizes its own slice (with the
  // bucket's error-feedback residual folded in) BEFORE the collective, and
  // the collective then reduces the decoded floats. The summation tree —
  // and therefore bitwise determinism — is exactly the uncompressed
  // algorithm's; only the wire pricing changes below.
  const topo::Compression comp = options_.compression;
  if (comp != topo::Compression::kNone) {
    for (int r = 0; r < p; ++r) {
      auto res = std::span<float>(residual_[r]).subspan(offset, count);
      topo::ef_encode(comp, slices[r], res);
    }
  }

  // The functional collective prices the RAW bytes it actually moves; with
  // compression that span is discarded and re-priced at the wire bytes, so
  // the tracer is suppressed here and the corrected span emitted manually.
  trace::Tracer* tracer = comp == topo::Compression::kNone ? tracer_ : nullptr;
  topo::CostBreakdown& slot = last_comm_buckets_[b];
  switch (options_.algo) {
    case AllreduceAlgo::kRhdAdjacent:
    case AllreduceAlgo::kRhdRoundRobin:
      slot = topo::allreduce_rhd(slices, topo_, options_.net, placement_,
                                 tracer, trace_track_);
      break;
    case AllreduceAlgo::kRing:
      slot = topo::allreduce_ring(slices, topo_, options_.net, placement_,
                                  tracer, trace_track_);
      break;
    case AllreduceAlgo::kParamServer:
      slot = topo::allreduce_param_server(slices, topo_, options_.net,
                                          options_.param_servers, tracer,
                                          trace_track_);
      break;
    case AllreduceAlgo::kHierarchical:
      slot = topo::allreduce_hierarchical(slices, topo_, options_.net, tracer,
                                          trace_track_);
      break;
  }
  if (comp != topo::Compression::kNone) {
    slot = topo::cost_compressed(
        comp, buckets_[b].bytes, options_.net,
        [this](std::int64_t wire) { return cost_for_bytes(wire); });
    topo::trace_allreduce(tracer_, trace_track_, trace_span_name(options_.algo),
                          slot);
  }
  // Iteration totals: every bucket's collective is identical across
  // iterations, so summing the per-bucket slots is correct even when the
  // caller reduces buckets one at a time.
  last_comm_ = topo::CostBreakdown{};
  for (const auto& c : last_comm_buckets_) {
    last_comm_.seconds += c.seconds;
    last_comm_.alpha_terms += c.alpha_terms;
    last_comm_.beta1_bytes += c.beta1_bytes;
    last_comm_.beta2_bytes += c.beta2_bytes;
    last_comm_.gamma_bytes += c.gamma_bytes;
  }
  return slot;
}

TimedIteration SsgdTrainer::price_iteration(
    const hw::CostModel& cost, const std::vector<core::LayerDesc>& descs_per_cg,
    const std::map<std::string, dnn::ConvEstimate>* conv_overrides) const {
  SWC_CHECK_EQ(descs_per_cg.size(), nets_[0]->layers().size());
  static const std::map<std::string, dnn::ConvEstimate> kNoOverrides;
  const dnn::NetTimeline tl = dnn::estimate_net_timeline(
      cost, descs_per_cg, conv_overrides ? *conv_overrides : kNoOverrides);

  // The exact pricing allreduce_bucket() charges: the codec wrapper over
  // the configured collective (identity when compression is off; the
  // functional collectives return the analytic breakdown bit for bit).
  const auto bucket_cost = [this](std::int64_t bytes) -> topo::CostBreakdown {
    return topo::cost_compressed(
        options_.compression, bytes, options_.net,
        [this](std::int64_t wire) { return cost_for_bytes(wire); });
  };

  TimedIteration it;
  it.comp_s = tl.total_s;
  // Per-bucket totals accumulate in layer order — the same order
  // allreduce_bucket() sums last_comm_buckets_ — so the serial-model comm
  // equals the functional step()'s last_comm() bit for bit.
  for (const auto& b : buckets_) {
    const topo::CostBreakdown c = bucket_cost(b.bytes);
    it.comm.seconds += c.seconds;
    it.comm.alpha_terms += c.alpha_terms;
    it.comm.beta1_bytes += c.beta1_bytes;
    it.comm.beta2_bytes += c.beta2_bytes;
    it.comm.gamma_bytes += c.gamma_bytes;
  }
  sim::EventLog log;
  it.overlap = topo::schedule_overlap(buckets_, tl.bwd_s, tl.total_s,
                                      bucket_cost, &log);
  it.serial_s = it.comp_s + it.comm.seconds;
  // swsched: the engine's own event log IS the timeline — extract it
  // directly (no per-subsystem re-derivation) and verify exclusive network
  // occupancy before the priced times are trusted.
  const check::Report report = check::verify_timeline(check::timeline_from_events(
      "ssgd-priced-iteration", {"compute", "network"}, {"network"}, log));
  SWC_CHECK_MSG(report.ok(), "swsched rejected the priced iteration timeline: "
                                 << report.summary());
  return it;
}

topo::CostBreakdown SsgdTrainer::cost_for_bytes(std::int64_t bytes) const {
  switch (options_.algo) {
    case AllreduceAlgo::kRhdAdjacent:
    case AllreduceAlgo::kRhdRoundRobin:
      return topo::cost_rhd(bytes, topo_, options_.net, placement_);
    case AllreduceAlgo::kRing:
      return topo::cost_ring(bytes, topo_, options_.net, placement_);
    case AllreduceAlgo::kParamServer:
      return topo::cost_param_server(bytes, topo_, options_.net,
                                     options_.param_servers);
    case AllreduceAlgo::kHierarchical:
      return topo::cost_hierarchical(bytes, topo_, options_.net);
  }
  return {};
}

void SsgdTrainer::apply(std::vector<std::vector<float>>& grads) {
  SWC_CHECK_MSG(!options_.timing_only,
                "timing-only trainer has no replica tensors; use "
                "price_iteration()");
  const int p = num_nodes();
  SWC_CHECK_EQ(grads.size(), static_cast<std::size_t>(p));
  if (options_.average) {
    const float inv = 1.0f / p;
    for (auto& g : grads) {
      for (auto& v : g) v *= inv;
    }
  }
  for (int r = 0; r < p; ++r) {
    nets_[r]->unpack_param_diffs(grads[r]);
    solvers_[r]->apply_update();
  }
}

void SsgdTrainer::apply_aggregate(std::span<const float> grad) {
  SWC_CHECK_MSG(!options_.timing_only,
                "timing-only trainer has no replica tensors; use "
                "price_iteration()");
  SWC_CHECK_EQ(grad.size(), nets_[0]->param_count());
  for (int r = 0; r < num_nodes(); ++r) {
    nets_[r]->unpack_param_diffs(grad);
    solvers_[r]->apply_update();
  }
}

std::vector<ScalePoint> scalability_curve(
    const hw::CostModel& cost,
    const std::vector<core::LayerDesc>& descs_per_cg, std::int64_t param_bytes,
    const SsgdOptions& options, const std::vector<int>& node_counts,
    const std::map<std::string, dnn::ConvEstimate>* conv_overrides) {
  const SeriesTiming series = prepare_series(cost, descs_per_cg, param_bytes,
                                             options, conv_overrides);
  std::vector<ScalePoint> out;
  out.reserve(node_counts.size());
  for (int nodes : node_counts) {
    out.push_back(price_scale_point(series, param_bytes, options, nodes));
  }
  return out;
}

}  // namespace swcaffe::parallel
