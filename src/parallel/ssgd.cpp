#include "parallel/ssgd.h"

#include <algorithm>

#include "base/log.h"
#include "swdnn/layer_estimate.h"

namespace swcaffe::parallel {

const char* allreduce_algo_name(AllreduceAlgo algo) {
  switch (algo) {
    case AllreduceAlgo::kRhdAdjacent:
      return "rhd-adjacent";
    case AllreduceAlgo::kRhdRoundRobin:
      return "rhd-round-robin";
    case AllreduceAlgo::kRing:
      return "ring";
    case AllreduceAlgo::kParamServer:
      return "param-server";
  }
  return "?";
}

SsgdTrainer::SsgdTrainer(const core::NetSpec& spec, int num_nodes,
                         const core::SolverSpec& solver,
                         const SsgdOptions& options, std::uint64_t seed)
    : options_(options) {
  SWC_CHECK_GT(num_nodes, 0);
  topo_.num_nodes = num_nodes;
  topo_.supernode_size = options.supernode_size;
  for (int i = 0; i < num_nodes; ++i) {
    nets_.push_back(std::make_unique<core::Net>(spec, seed));
  }
  for (int i = 1; i < num_nodes; ++i) nets_[i]->copy_params_from(*nets_[0]);
  for (int i = 0; i < num_nodes; ++i) {
    solvers_.push_back(std::make_unique<core::SgdSolver>(*nets_[i], solver));
  }
}

double SsgdTrainer::step(std::span<const float> data,
                         std::span<const float> labels) {
  std::vector<std::vector<float>> grads(num_nodes());
  const double loss = forward_backward_packed(data, labels, grads);
  allreduce(grads);
  apply(grads);
  return loss;
}

double SsgdTrainer::forward_backward_packed(
    std::span<const float> data, std::span<const float> labels,
    std::vector<std::vector<float>>& grads) {
  const int p = num_nodes();
  const std::size_t data_per_node = nets_[0]->blob("data")->count();
  const std::size_t labels_per_node = nets_[0]->blob("label")->count();
  SWC_CHECK_EQ(data.size(), data_per_node * p);
  SWC_CHECK_EQ(labels.size(), labels_per_node * p);
  SWC_CHECK_EQ(grads.size(), static_cast<std::size_t>(p));

  double loss = 0.0;
  const std::size_t n = nets_[0]->param_count();
  for (int r = 0; r < p; ++r) {
    core::Net& net = *nets_[r];
    auto d = net.blob("data")->data();
    auto l = net.blob("label")->data();
    std::copy_n(data.begin() + r * data_per_node, data_per_node, d.begin());
    std::copy_n(labels.begin() + r * labels_per_node, labels_per_node,
                l.begin());
    loss += net.forward_backward();
    // Pack ALL layers' gradients into one message (Sec. V-A: per-layer
    // messages waste both network and memory bandwidth on small layers).
    grads[r].resize(n);
    net.pack_param_diffs(grads[r]);
  }
  return loss / p;
}

const topo::CostBreakdown& SsgdTrainer::allreduce(
    std::vector<std::vector<float>>& grads) {
  switch (options_.algo) {
    case AllreduceAlgo::kRhdAdjacent:
      last_comm_ = topo::allreduce_rhd(grads, topo_, options_.net,
                                       topo::Placement::kAdjacent, tracer_,
                                       trace_track_);
      break;
    case AllreduceAlgo::kRhdRoundRobin:
      last_comm_ = topo::allreduce_rhd(grads, topo_, options_.net,
                                       topo::Placement::kRoundRobin, tracer_,
                                       trace_track_);
      break;
    case AllreduceAlgo::kRing:
      last_comm_ = topo::allreduce_ring(grads, topo_, options_.net,
                                        topo::Placement::kAdjacent, tracer_,
                                        trace_track_);
      break;
    case AllreduceAlgo::kParamServer:
      last_comm_ = topo::allreduce_param_server(grads, topo_, options_.net,
                                                options_.param_servers,
                                                tracer_, trace_track_);
      break;
  }
  return last_comm_;
}

void SsgdTrainer::apply(std::vector<std::vector<float>>& grads) {
  const int p = num_nodes();
  SWC_CHECK_EQ(grads.size(), static_cast<std::size_t>(p));
  if (options_.average) {
    const float inv = 1.0f / p;
    for (auto& g : grads) {
      for (auto& v : g) v *= inv;
    }
  }
  for (int r = 0; r < p; ++r) {
    nets_[r]->unpack_param_diffs(grads[r]);
    solvers_[r]->apply_update();
  }
}

void SsgdTrainer::apply_aggregate(std::span<const float> grad) {
  SWC_CHECK_EQ(grad.size(), nets_[0]->param_count());
  for (int r = 0; r < num_nodes(); ++r) {
    nets_[r]->unpack_param_diffs(grad);
    solvers_[r]->apply_update();
  }
}

std::vector<ScalePoint> scalability_curve(
    const hw::CostModel& cost,
    const std::vector<core::LayerDesc>& descs_per_cg, std::int64_t param_bytes,
    const SsgdOptions& options, const std::vector<int>& node_counts,
    const std::map<std::string, dnn::ConvEstimate>* conv_overrides) {
  const double comp =
      conv_overrides
          ? dnn::estimate_net_sw(cost, descs_per_cg, *conv_overrides)
          : dnn::estimate_net_sw(cost, descs_per_cg);
  std::vector<ScalePoint> out;
  for (int nodes : node_counts) {
    topo::Topology topo;
    topo.num_nodes = nodes;
    topo.supernode_size = options.supernode_size;
    topo::CostBreakdown comm;
    switch (options.algo) {
      case AllreduceAlgo::kRhdAdjacent:
        comm = topo::cost_rhd(param_bytes, topo, options.net,
                              topo::Placement::kAdjacent);
        break;
      case AllreduceAlgo::kRhdRoundRobin:
        comm = topo::cost_rhd(param_bytes, topo, options.net,
                              topo::Placement::kRoundRobin);
        break;
      case AllreduceAlgo::kRing:
        comm = topo::cost_ring(param_bytes, topo, options.net,
                               topo::Placement::kAdjacent);
        break;
      case AllreduceAlgo::kParamServer:
        comm = topo::cost_param_server(param_bytes, topo, options.net,
                                       options.param_servers);
        break;
    }
    ScalePoint pt;
    pt.nodes = nodes;
    pt.comp_s = comp;
    pt.comm_s = comm.seconds;
    pt.speedup = nodes * comp / (comp + comm.seconds);
    pt.comm_fraction = comm.seconds / (comp + comm.seconds);
    out.push_back(pt);
  }
  return out;
}

}  // namespace swcaffe::parallel
