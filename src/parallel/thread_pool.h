// Fixed worker thread pool for replica-parallel simulation.
//
// The SSGD trainer's replicas are fully independent between collectives
// (each owns its Net, its solver and its gradient buffer), so the
// forward/backward loop over replicas is embarrassingly parallel on the
// host. parallel_for runs a loop body across the workers AND the calling
// thread, blocking until every index has completed — determinism is the
// caller's job (each index must touch disjoint state and any reduction must
// happen after the join, in index order).
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace swcaffe::parallel {

class ThreadPool {
 public:
  /// `threads` is the TOTAL concurrency of parallel_for: the pool spawns
  /// threads - 1 workers and the calling thread contributes the last lane.
  /// threads <= 1 spawns nothing and parallel_for degenerates to a serial
  /// loop.
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (workers + the caller).
  int threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(i) for every i in [begin, end); returns after ALL have
  /// completed. Indices are claimed one at a time under the pool mutex, so
  /// any worker may run any index — the body must not depend on which
  /// thread runs it. Not reentrant: fn must not call parallel_for.
  void parallel_for(int begin, int end, const std::function<void(int)>& fn);

  static int hardware_threads() {
    return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< signals a new parallel_for batch
  std::condition_variable done_cv_;  ///< signals the batch drained
  const std::function<void(int)>* fn_ = nullptr;
  int next_ = 0;     ///< next unclaimed index
  int end_ = 0;      ///< one past the last index
  int pending_ = 0;  ///< indices claimed-or-unclaimed but not yet finished
  std::int64_t generation_ = 0;  ///< batch counter (wakes idle workers once)
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace swcaffe::parallel
