// The replica worker pool moved into swsim (sim/thread_pool.h) when the
// discrete-event engine extended it from replica loops to node-level event
// processing; this forwarding alias keeps the parallel:: spelling working
// for the trainer and its tests.
#pragma once

#include "sim/thread_pool.h"

namespace swcaffe::parallel {

using ThreadPool = sim::ThreadPool;

}  // namespace swcaffe::parallel
