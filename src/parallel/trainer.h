// Single-node training harness: wires the I/O prefetcher, the multi-core-
// group runner (Algorithm 1) and the solver into Caffe's familiar train
// loop (display/test/snapshot intervals), and accounts the simulated
// SW26010 time of every iteration (compute from the cost model, I/O from
// the disk model, overlapped the way the prefetch thread overlaps them).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/layer_desc.h"
#include "core/solver.h"
#include "hw/cost_model.h"
#include "io/prefetch.h"
#include "parallel/node_runner.h"
#include "swdnn/conv_plan.h"

namespace swcaffe::parallel {

struct TrainOptions {
  int max_iter = 100;
  int display_every = 10;    ///< 0 disables logging
  int test_every = 0;        ///< 0 disables the test phase
  int test_batches = 4;
  int snapshot_every = 0;    ///< 0 disables snapshots
  std::string snapshot_prefix = "swcaffe";
  int num_core_groups = 4;
  io::FileLayout file_layout = io::FileLayout::kStriped;
  /// Optional: records the run as simulated-time spans (track 0 = the node:
  /// iteration > compute > per-layer detail, plus exposed I/O; tracks 1..CGs
  /// = one "forward_backward" span per core group per iteration). Null costs
  /// nothing and every TrainStats number is bit-identical to an untraced run.
  trace::Tracer* tracer = nullptr;
  /// Run the swtune autotuner over the net at construction: every replica is
  /// switched onto the tuned per-layer strategies and the simulated compute
  /// time per iteration is priced at the tuned plans.
  bool tune = false;
  /// Optional persistent plan cache for --tune (loaded before the search,
  /// written back after; a warm cache skips the search entirely).
  std::string plan_cache;
};

struct TrainStats {
  std::vector<double> losses;        ///< per displayed iteration
  std::vector<double> test_accuracy; ///< per test run
  double final_loss = 0.0;
  double simulated_seconds = 0.0;    ///< SW26010 wall time of the whole run
  double simulated_io_seconds = 0.0; ///< portion that was NOT hidden
  /// Per-iteration compute at the plans actually run (== default when the
  /// tuner is off) and at the hand-written defaults, for tuned-vs-default
  /// reporting in the benches.
  double compute_per_iter_seconds = 0.0;
  double default_compute_per_iter_seconds = 0.0;
  int iterations = 0;
};

class Trainer {
 public:
  /// `spec` is the per-core-group spec (sub-batch = node batch / CGs) with
  /// "data"/"label" inputs; the dataset must produce matching image sizes.
  Trainer(const core::NetSpec& spec, const core::SolverSpec& solver,
          const io::DatasetSpec& dataset, const io::DiskParams& disk,
          const TrainOptions& options);

  /// Runs the loop; returns per-run statistics.
  TrainStats run();

  core::Net& net() { return runner_->master(); }
  core::SgdSolver& solver() { return *solver_; }

 private:
  double evaluate(int batches);

  TrainOptions options_;
  std::unique_ptr<NodeRunner> runner_;
  std::unique_ptr<core::SgdSolver> solver_;
  std::unique_ptr<io::Prefetcher> prefetcher_;
  hw::CostModel cost_;
  io::SyntheticImageNet eval_data_;
  double sim_compute_per_iter_ = 0.0;
  double sim_compute_default_ = 0.0;
  std::vector<core::LayerDesc> descs_;
  /// Tuned per-conv estimates (empty when options_.tune is false; an empty
  /// map makes every estimator call bit-identical to the untuned path).
  std::map<std::string, dnn::ConvEstimate> overrides_;
};

}  // namespace swcaffe::parallel
