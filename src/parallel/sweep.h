// swsim timing-only fast path for the full Fig. 10/11 scalability sweeps.
//
// scalability_curve prices one series at a time and re-derives the per-layer
// compute timeline on every call; a full-machine sweep (five batch-size
// series x seven node counts, plus the hierarchical/compressed series out to
// 40,960 nodes) repeats that prep dozens of times and runs strictly
// serially. This module splits the work the way the arithmetic actually
// factors:
//
//  * prepare_series — the per-series prep (analytic NetTimeline + bucket
//    layout of the packed message), computed ONCE per series;
//  * price_scale_point — ONE (series, node-count) point: swcheck comm
//    legality, codec-wrapped collective pricing, the swsim overlap schedule
//    and its swsched verification. This is the exact per-node body of
//    scalability_curve — both paths call it, so they are bit-identical by
//    construction;
//  * scalability_sweep — fans every (series, node) point over the swsim
//    worker pool. Points are independent (pure arithmetic on the prepared
//    series state) and results land in index-order slots, so the sweep is
//    bit-identical to calling scalability_curve per series at ANY thread
//    count — pinned by tests and the bench determinism gates.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hw/cost_model.h"
#include "parallel/ssgd.h"
#include "swdnn/layer_estimate.h"

namespace swcaffe::parallel {

/// Per-series prep of the analytic fast path, computed once and reused by
/// every node count: the per-layer compute timeline and the layer-aligned
/// bucket layout of the packed gradient message (descriptor bytes rescaled
/// to sum exactly to param_bytes).
struct SeriesTiming {
  dnn::NetTimeline timeline;
  std::vector<topo::GradientBucket> buckets;
};

SeriesTiming prepare_series(
    const hw::CostModel& cost, const std::vector<core::LayerDesc>& descs_per_cg,
    std::int64_t param_bytes, const SsgdOptions& options,
    const std::map<std::string, dnn::ConvEstimate>* conv_overrides = nullptr);

/// Prices one Fig. 10/11 point at `nodes` nodes from the prepared series
/// state. Shared per-point body of scalability_curve and scalability_sweep.
ScalePoint price_scale_point(const SeriesTiming& series,
                             std::int64_t param_bytes,
                             const SsgdOptions& options, int nodes);

/// One curve of the sweep: a network architecture (descriptors + packed
/// message size) under one SSGD configuration, priced at every node count.
struct SweepSeries {
  std::string label;
  std::vector<core::LayerDesc> descs_per_cg;
  std::int64_t param_bytes = 0;
  SsgdOptions options;
  std::vector<int> node_counts;
  /// Optional tuned conv pricing (must outlive the sweep call).
  const std::map<std::string, dnn::ConvEstimate>* conv_overrides = nullptr;
};

struct SweepResult {
  std::string label;
  std::vector<ScalePoint> points;  ///< index-matched to node_counts
};

/// Runs the whole sweep: per-series prep once, then every (series, node)
/// point priced independently on `threads` workers (1 = serial). Results
/// are bit-identical to scalability_curve per series for any thread count.
std::vector<SweepResult> scalability_sweep(const hw::CostModel& cost,
                                           const std::vector<SweepSeries>& series,
                                           int threads = 1);

}  // namespace swcaffe::parallel
