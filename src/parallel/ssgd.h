// Parallel synchronous SGD across simulated nodes (paper Sec. V-A).
//
// Functional trainer: N model replicas, each computes gradients on its
// sub-mini-batch, gradients of ALL layers are packed into one flat message
// (the paper's gradient-packing optimization) and combined with the chosen
// all-reduce; every node then applies the identical SGD update. The
// communication cost of each iteration is accounted with the topo cost
// model.
//
// Analytic scalability model: reproduces Figs. 10/11 at up to 1024 nodes
// without materializing 1024 replicas.
#pragma once

#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/models.h"
#include "core/net.h"
#include "core/solver.h"
#include "hw/cost_model.h"
#include "parallel/thread_pool.h"
#include "swdnn/conv_plan.h"
#include "topo/allreduce.h"
#include "topo/compress.h"
#include "topo/overlap.h"

namespace swcaffe::parallel {

/// kHierarchical is the two-level supernode-aware all-reduce
/// (topo/hierarchical): supernode-local reduce-scatter, inter-supernode
/// improved RHD over chunk representatives, supernode-local all-gather.
/// Falls back to flat improved RHD when the topology can't be split
/// (see topo::hierarchical_applicable).
enum class AllreduceAlgo {
  kRhdAdjacent,
  kRhdRoundRobin,
  kRing,
  kParamServer,
  kHierarchical
};

const char* allreduce_algo_name(AllreduceAlgo algo);

/// Inverse of allreduce_algo_name ("rhd-adjacent" / "rhd-round-robin" /
/// "ring" / "param-server" / "hierarchical"); returns false on an unknown
/// name, leaving *out untouched. For CLI flag parsing.
bool allreduce_algo_from_name(const char* name, AllreduceAlgo* out);

/// Topology placement implied by the collective: only the paper's improved
/// RHD mapping deals ranks to supernodes round-robin; everything else keeps
/// the default adjacent mapping. Shared by SsgdTrainer and the cluster
/// scheduler's gang allocator (sched::Cluster), so a gang is laid out
/// exactly the way its collective expects to find the ranks.
topo::Placement placement_for(AllreduceAlgo algo);

struct SsgdOptions {
  AllreduceAlgo algo = AllreduceAlgo::kRhdRoundRobin;
  topo::NetParams net = topo::sunway_network();
  int supernode_size = 256;
  int param_servers = 1;
  /// Average (true, the paper's SSGD) or plain-sum gradients.
  bool average = true;
  /// Layer-aligned gradient buckets of the all-reduce (topo/overlap). 1 =
  /// the paper's single packed message. More buckets let the analytic
  /// overlap schedule hide collectives under backward; the functional
  /// reduction is elementwise and therefore bit-identical for any count.
  /// Clamps to the number of parameterized layers.
  int buckets = 1;
  /// Host worker threads for the replica forward/backward loop (wall-clock
  /// only; results are bit-identical to serial for any value). 1 = serial.
  int threads = 1;
  /// Gradient compression of the all-reduce payload (topo/compress). Each
  /// node encode/decodes its packed slice at the source with per-bucket
  /// error-feedback residuals, so the quantization error telescopes instead
  /// of accumulating; the collective then combines the decoded values, which
  /// keeps every algorithm's summation tree (and hence determinism) intact
  /// while the wire cost is priced at the compressed byte count. kInt8 is
  /// rejected for ring/param-server by swcheck (re-quantizing partial sums
  /// at every hop has no error bound).
  topo::Compression compression = topo::Compression::kNone;
  /// Timing-only mode (the swsim fast path): the trainer builds ONE
  /// prototype replica — enough to derive and verify the bucket layout from
  /// live layers — instead of num_nodes, and prices iterations through
  /// price_iteration() instead of training. The functional phases (step,
  /// forward_backward_packed, allreduce, apply) throw; there are no replica
  /// tensors to touch. Priced times are bit-identical to what the
  /// functional path charges (pinned by tests).
  bool timing_only = false;
};

/// One priced (not executed) SSGD iteration of the timing-only fast path.
struct TimedIteration {
  double comp_s = 0.0;  ///< forward + backward estimate (one node, 4 CGs)
  /// Serial-model all-reduce total: per-bucket collective costs summed in
  /// layer order, exactly how step() accumulates last_comm().
  topo::CostBreakdown comm;
  topo::OverlapTimeline overlap;  ///< bucketed schedule on the swsim engine
  double serial_s = 0.0;          ///< comp_s + comm.seconds
};

class SsgdTrainer {
 public:
  /// `spec` takes the PER-NODE sub-batch and declares "data"/"label" inputs.
  SsgdTrainer(const core::NetSpec& spec, int num_nodes,
              const core::SolverSpec& solver, const SsgdOptions& options,
              std::uint64_t seed = 1);

  /// One SSGD iteration over the global batch (= nodes * sub-batch).
  /// Returns the mean loss across nodes.
  double step(std::span<const float> data, std::span<const float> labels);

  // --- Split-phase API (step() == the three phases in order; the
  // fault-tolerant trainer interposes recovery between them) ----------------

  /// Forward/backward on every replica; packs each node's gradients into
  /// `grads[r]`. Returns the mean loss across nodes.
  double forward_backward_packed(std::span<const float> data,
                                 std::span<const float> labels,
                                 std::vector<std::vector<float>>& grads);

  /// In-place all-reduce of the packed per-node gradients with the
  /// configured algorithm; also stored as last_comm(). With buckets > 1
  /// this reduces bucket by bucket in network service order (reverse layer
  /// order) — elementwise identical to the single-message reduction.
  const topo::CostBreakdown& allreduce(std::vector<std::vector<float>>& grads);

  /// Per-bucket variant of the all-reduce phase: reduces only bucket `b`'s
  /// slice of every node's packed gradient and returns that bucket's own
  /// cost breakdown (the fault-tolerant trainer interposes per-bucket
  /// retry/replay between calls). Callers must reduce every bucket exactly
  /// once per iteration; allreduce() is the loop over all of them.
  const topo::CostBreakdown& allreduce_bucket(
      std::vector<std::vector<float>>& grads, int b);

  /// Scales (when averaging), unpacks and applies the SGD update per node.
  void apply(std::vector<std::vector<float>>& grads);

  /// Applies one already-combined gradient verbatim to every node (the
  /// bounded-staleness path, where aggregation happened upstream).
  void apply_aggregate(std::span<const float> grad);

  /// Prices one iteration without touching replica tensors: compute from
  /// the analytic layer estimators (`descs_per_cg` must describe the same
  /// layer sequence as the replica, one descriptor per layer), per-bucket
  /// collectives at this trainer's exact bucket layout and pricing, and the
  /// overlapped schedule on the swsim engine. The engine's own event log is
  /// extracted (check::timeline_from_events) and verified by swsched before
  /// the numbers are returned. Available in both modes; the priced comm
  /// equals the functional step()'s last_comm() bit for bit.
  TimedIteration price_iteration(
      const hw::CostModel& cost,
      const std::vector<core::LayerDesc>& descs_per_cg,
      const std::map<std::string, dnn::ConvEstimate>* conv_overrides =
          nullptr) const;

  core::Net& node(int i) { return *nets_[i]; }
  core::SgdSolver& solver(int i) { return *solvers_[i]; }
  const SsgdOptions& options() const { return options_; }
  /// Simulated cluster size (in timing-only mode only ONE replica exists —
  /// the prototype at node(0) — but pricing still spans this many nodes).
  int num_nodes() const { return topo_.num_nodes; }
  const topo::CostBreakdown& last_comm() const { return last_comm_; }
  int iter() const { return solvers_[0]->iter(); }

  /// The layer-aligned bucket layout (built in the constructor from the
  /// replica's live per-layer parameter counts, verified by swcheck).
  const std::vector<topo::GradientBucket>& bucket_layout() const {
    return buckets_;
  }
  int num_buckets() const { return static_cast<int>(buckets_.size()); }
  /// Per-bucket breakdowns of the latest iteration, indexed like
  /// bucket_layout() (layer order, not service order).
  const std::vector<topo::CostBreakdown>& last_comm_buckets() const {
    return last_comm_buckets_;
  }

  /// Attaches an optional tracer: each step()'s all-reduce is recorded as a
  /// "comm.allreduce" span with alpha/beta/gamma counters on `track`.
  void set_tracer(trace::Tracer* tracer, int track = 0) {
    tracer_ = tracer;
    trace_track_ = track;
  }

 private:
  SsgdOptions options_;
  topo::Topology topo_;
  /// Topology placement of the configured algorithm; computed once here
  /// instead of per allreduce() call.
  topo::Placement placement_ = topo::Placement::kRoundRobin;
  std::vector<std::unique_ptr<core::Net>> nets_;
  std::vector<std::unique_ptr<core::SgdSolver>> solvers_;
  std::vector<topo::GradientBucket> buckets_;
  std::vector<std::size_t> bucket_offset_;  ///< float offset of each bucket
  std::vector<topo::CostBreakdown> last_comm_buckets_;
  topo::CostBreakdown last_comm_;
  std::unique_ptr<ThreadPool> pool_;  ///< null when options_.threads <= 1
  /// Per-node error-feedback residuals (param_count floats each); empty
  /// when compression is kNone. Residuals persist across iterations — the
  /// carry is what bounds the accumulated quantization drift.
  std::vector<std::vector<float>> residual_;
  trace::Tracer* tracer_ = nullptr;
  int trace_track_ = 0;

  /// Cost of the configured collective over `bytes` on this trainer's
  /// topology (pricing only; no data movement).
  topo::CostBreakdown cost_for_bytes(std::int64_t bytes) const;
};

/// One point of the Fig. 10/11 curves.
struct ScalePoint {
  int nodes = 1;
  double comp_s = 0.0;       ///< per-iteration compute (node, 4 CGs)
  double comm_s = 0.0;       ///< per-iteration all-reduce (serial model)
  double speedup = 1.0;      ///< throughput(N) / throughput(1)
  double comm_fraction = 0;  ///< comm / (comp + comm)
  // Overlapped (bucketed) series at SsgdOptions::buckets. With buckets == 1
  // these reproduce the serial model bit-for-bit (overlap_s == comp + comm).
  double overlap_s = 0.0;         ///< overlapped iteration time
  double exposed_comm_s = 0.0;    ///< comm tail sticking out past compute
  double overlap_speedup = 1.0;   ///< nodes * comp / overlap_s
  int buckets = 1;                ///< effective bucket count (post-clamp)
};

/// Analytic scalability: `descs_per_cg` describes the net at sub_batch/4
/// (one core group's share, Algorithm 1); `param_bytes` is the packed
/// gradient message. `conv_overrides` (optional) prices convolutions at
/// tuned plans (swtune), so topo scheduling sees the tuned compute time.
/// `options.buckets` > 1 additionally fills the overlapped series: per-layer
/// descriptor bytes are rescaled to sum to `param_bytes`, bucketed with
/// topo::make_buckets and scheduled with topo::schedule_overlap against the
/// per-layer backward times.
std::vector<ScalePoint> scalability_curve(
    const hw::CostModel& cost, const std::vector<core::LayerDesc>& descs_per_cg,
    std::int64_t param_bytes, const SsgdOptions& options,
    const std::vector<int>& node_counts,
    const std::map<std::string, dnn::ConvEstimate>* conv_overrides = nullptr);

}  // namespace swcaffe::parallel
