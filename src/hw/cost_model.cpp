#include "hw/cost_model.h"

#include <algorithm>

#include "base/log.h"

namespace swcaffe::hw {

void TrafficLedger::add(const TrafficLedger& other) {
  dma_get_bytes += other.dma_get_bytes;
  dma_put_bytes += other.dma_put_bytes;
  rlc_bytes += other.rlc_bytes;
  mpe_bytes += other.mpe_bytes;
  flops += other.flops;
  elapsed_s += other.elapsed_s;
}

double CostModel::dma_time(std::size_t bytes_per_cpe, int n_cpes) const {
  SWC_CHECK_GT(n_cpes, 0);
  SWC_CHECK_LE(n_cpes, params_.mesh_size());
  if (bytes_per_cpe == 0) return 0.0;
  // Concurrent streams share the memory controller: each stream's link rate
  // is the per-CPE ceiling or an equal share of the aggregate peak,
  // whichever is lower.
  const double link_bw =
      std::min(params_.dma_per_cpe_bw, params_.dma_peak_bw / n_cpes);
  const double latency = params_.dma_latency_cycles * params_.cycle_seconds();
  return latency + static_cast<double>(bytes_per_cpe) / link_bw;
}

double CostModel::dma_bandwidth(std::size_t bytes_per_cpe, int n_cpes) const {
  const double t = dma_time(bytes_per_cpe, n_cpes);
  if (t <= 0.0) return 0.0;
  return static_cast<double>(bytes_per_cpe) * n_cpes / t;
}

double CostModel::dma_strided_time(std::size_t bytes_per_cpe,
                                   std::size_t block_bytes, int n_cpes) const {
  SWC_CHECK_GT(block_bytes, 0u);
  if (bytes_per_cpe == 0) return 0.0;
  const std::size_t blocks = (bytes_per_cpe + block_bytes - 1) / block_bytes;
  const double setup = static_cast<double>(blocks) *
                       params_.dma_stride_setup_cycles *
                       params_.cycle_seconds();
  return dma_time(bytes_per_cpe, n_cpes) + setup;
}

double CostModel::dma_strided_bandwidth(std::size_t bytes_per_cpe,
                                        std::size_t block_bytes,
                                        int n_cpes) const {
  const double t = dma_strided_time(bytes_per_cpe, block_bytes, n_cpes);
  if (t <= 0.0) return 0.0;
  return static_cast<double>(bytes_per_cpe) * n_cpes / t;
}

double CostModel::compute_time(double flops, bool single_precision) const {
  if (flops <= 0.0) return 0.0;
  const double sustained =
      params_.cpe_cluster_flops * params_.kernel_efficiency;
  double t = flops / sustained;
  if (single_precision) t *= params_.sp_convert_overhead;
  return t;
}

double CostModel::mpe_compute_time(double flops) const {
  if (flops <= 0.0) return 0.0;
  return flops / params_.mpe_flops;
}

double CostModel::mpe_copy_time(std::size_t bytes) const {
  return static_cast<double>(bytes) / params_.mpe_copy_bw;
}

double CostModel::rlc_time(std::size_t bytes, bool broadcast) const {
  if (bytes == 0) return 0.0;
  const double bw = broadcast ? params_.rlc_bcast_bw : params_.rlc_p2p_bw;
  const double latency = params_.rlc_latency_cycles * params_.cycle_seconds();
  return latency + static_cast<double>(bytes) / bw;
}

}  // namespace swcaffe::hw
