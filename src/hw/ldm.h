// Local Directive Memory (scratchpad) model.
//
// Each CPE has 64 KB of software-managed LDM. Kernel plans allocate tiles
// from it with a bump allocator; exceeding the capacity throws, mirroring
// how a real SW26010 kernel simply cannot be compiled with oversized tiles.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace swcaffe::hw {

/// One CPE's scratchpad, measured in doubles (the RLC-native element type).
class Ldm {
 public:
  explicit Ldm(std::size_t capacity_bytes);

  /// Allocates `n` doubles; throws base::CheckError if the LDM is full.
  std::span<double> alloc(std::size_t n);

  /// Releases all allocations (kernels reset between phases/blocks).
  void reset();

  std::size_t capacity_bytes() const { return capacity_bytes_; }
  std::size_t used_bytes() const { return used_ * sizeof(double); }

 private:
  std::size_t capacity_bytes_;
  std::size_t used_ = 0;  // in doubles
  std::vector<double> storage_;
};

}  // namespace swcaffe::hw
