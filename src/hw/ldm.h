// Local Directive Memory (scratchpad) model.
//
// Each CPE has 64 KB of software-managed LDM. Kernel plans allocate tiles
// from it with a bump allocator; exceeding the capacity throws, mirroring
// how a real SW26010 kernel simply cannot be compiled with oversized tiles.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace swcaffe::hw {

/// One CPE's scratchpad, measured in doubles (the RLC-native element type).
class Ldm {
 public:
  explicit Ldm(std::size_t capacity_bytes);

  /// Allocates `n` doubles; throws base::CheckError if the LDM is full.
  std::span<double> alloc(std::size_t n);

  /// Releases all allocations (kernels reset between phases/blocks). The
  /// backing storage is allocated once in the constructor and preserved
  /// across resets: spans handed out before a reset keep pointing at stable
  /// memory and no reallocation churn occurs between phases.
  void reset();

  std::size_t capacity_bytes() const { return capacity_bytes_; }
  std::size_t used_bytes() const { return used_ * sizeof(double); }
  /// High-water mark of used_bytes() since construction (survives reset();
  /// what swcheck's LDM budgets are validated against in tests).
  std::size_t peak_bytes() const { return peak_ * sizeof(double); }
  /// True when no allocation is live — the invariant every kernel must
  /// restore before handing the CPE back (asserted by CoreGroup::reset).
  bool empty() const { return used_ == 0; }

 private:
  std::size_t capacity_bytes_;
  std::size_t used_ = 0;  // in doubles
  std::size_t peak_ = 0;  // in doubles
  std::vector<double> storage_;
};

}  // namespace swcaffe::hw
