// Whole-chip composition: a SW26010 is four core groups on a NoC, each with
// its own memory controller and 8 GB memory space. The chip object bundles
// the per-CG resources the kernel plans and the node runner need.
#pragma once

#include <memory>
#include <vector>

#include "hw/cost_model.h"
#include "hw/ldm.h"
#include "hw/params.h"
#include "hw/rlc.h"

namespace swcaffe::hw {

/// One core group: cost model plus a functional 8x8 mesh of LDMs and an RLC
/// fabric. The mesh GEMM and the conv kernel plans execute against this.
class CoreGroup {
 public:
  explicit CoreGroup(const HwParams& params);

  const HwParams& params() const { return params_; }
  const CostModel& cost() const { return cost_; }
  RlcFabric& rlc() { return rlc_; }
  Ldm& ldm(int row, int col);
  int mesh_rows() const { return params_.mesh_rows; }
  int mesh_cols() const { return params_.mesh_cols; }

  /// Resets all LDMs and the RLC ledger (between kernel launches).
  void reset();

  /// Attaches an optional tracer to this core group's cost model. Kernels
  /// that run on the group (mesh GEMM, the functional conv/pool sims) emit
  /// phase-level spans on `track`; for fine-grained per-message RLC spans
  /// attach a tracer to the fabric directly via rlc().set_tracer().
  void set_tracer(trace::Tracer* tracer, int track = 0) {
    cost_.set_tracer(tracer, track);
  }

 private:
  HwParams params_;
  CostModel cost_;
  RlcFabric rlc_;
  std::vector<Ldm> ldms_;
};

/// The full processor: `HwParams::num_core_groups` core groups. Core groups
/// have private memory spaces; swCaffe parallelizes over them with one
/// thread per CG (Algorithm 1), so the chip only needs to expose the group
/// collection.
class Sw26010Chip {
 public:
  explicit Sw26010Chip(const HwParams& params = HwParams{});

  int num_core_groups() const { return static_cast<int>(groups_.size()); }
  CoreGroup& group(int i);
  const HwParams& params() const { return params_; }

  /// Peak flops of the whole chip (all CPE clusters).
  double peak_flops() const;

 private:
  HwParams params_;
  std::vector<std::unique_ptr<CoreGroup>> groups_;
};

}  // namespace swcaffe::hw
