#include "hw/dma.h"

#include <algorithm>

#include "base/log.h"
#include "sim/event.h"
#include "trace/tracer.h"

namespace swcaffe::hw {

namespace {

/// Mirrors one charged transfer into the tracer and/or swsim event log
/// attached to the cost model (if any): a "hw.dma" span of the charged
/// duration carrying the byte counters, stamped at `start_s` on the
/// engine's local elapsed clock. Purely observational — ledgers and times
/// are computed first and are identical with both sinks off.
void trace_transfer(const CostModel& cost, const char* name, bool is_get,
                    std::size_t bytes, double start_s, double seconds) {
  if (sim::EventLog* log = cost.event_log()) {
    log->charge(cost.event_actor(), start_s, seconds,
                static_cast<std::int64_t>(bytes), name);
  }
  trace::Tracer* tracer = cost.tracer();
  if (!tracer) return;
  const int track = cost.trace_track();
  tracer->begin_span(track, name, "hw.dma");
  trace::TrafficCounters c;
  (is_get ? c.dma_get_bytes : c.dma_put_bytes) = bytes;
  tracer->charge(track, c);
  tracer->end_span(track, seconds);
}

}  // namespace

void DmaEngine::get(std::span<const double> src, std::span<double> dst,
                    int n_cpes) {
  SWC_CHECK_EQ(src.size(), dst.size());
  std::copy(src.begin(), src.end(), dst.begin());
  const std::size_t bytes = src.size() * sizeof(double);
  const std::size_t n = static_cast<std::size_t>(issues(bytes));
  const double seconds = degrade(cost_->dma_time(bytes, n_cpes)) * n;
  const double start = ledger_.elapsed_s;
  ledger_.dma_get_bytes += bytes * n;
  ledger_.elapsed_s += seconds;
  trace_transfer(*cost_, "dma.get", /*is_get=*/true, bytes * n, start,
                 seconds);
}

void DmaEngine::put(std::span<const double> src, std::span<double> dst,
                    int n_cpes) {
  SWC_CHECK_EQ(src.size(), dst.size());
  std::copy(src.begin(), src.end(), dst.begin());
  const std::size_t bytes = src.size() * sizeof(double);
  const std::size_t n = static_cast<std::size_t>(issues(bytes));
  const double seconds = degrade(cost_->dma_time(bytes, n_cpes)) * n;
  const double start = ledger_.elapsed_s;
  ledger_.dma_put_bytes += bytes * n;
  ledger_.elapsed_s += seconds;
  trace_transfer(*cost_, "dma.put", /*is_get=*/false, bytes * n, start,
                 seconds);
}

void DmaEngine::get_strided(std::span<const double> src,
                            std::size_t src_stride, std::span<double> dst,
                            std::size_t block_len, std::size_t blocks,
                            int n_cpes) {
  SWC_CHECK_GE(src_stride, block_len);
  SWC_CHECK_GE(dst.size(), block_len * blocks);
  SWC_CHECK_GE(src.size(), (blocks - 1) * src_stride + block_len);
  for (std::size_t b = 0; b < blocks; ++b) {
    std::copy_n(src.data() + b * src_stride, block_len,
                dst.data() + b * block_len);
  }
  const std::size_t bytes = block_len * blocks * sizeof(double);
  const std::size_t n = static_cast<std::size_t>(issues(bytes));
  const double seconds =
      degrade(cost_->dma_strided_time(bytes, block_len * sizeof(double),
                                      n_cpes)) *
      n;
  const double start = ledger_.elapsed_s;
  ledger_.dma_get_bytes += bytes * n;
  ledger_.elapsed_s += seconds;
  trace_transfer(*cost_, "dma.get_strided", /*is_get=*/true, bytes * n, start,
                 seconds);
}

void DmaEngine::put_strided(std::span<const double> src, std::span<double> dst,
                            std::size_t dst_stride, std::size_t block_len,
                            std::size_t blocks, int n_cpes) {
  SWC_CHECK_GE(dst_stride, block_len);
  SWC_CHECK_GE(src.size(), block_len * blocks);
  SWC_CHECK_GE(dst.size(), (blocks - 1) * dst_stride + block_len);
  for (std::size_t b = 0; b < blocks; ++b) {
    std::copy_n(src.data() + b * block_len, block_len,
                dst.data() + b * dst_stride);
  }
  const std::size_t bytes = block_len * blocks * sizeof(double);
  const std::size_t n = static_cast<std::size_t>(issues(bytes));
  const double seconds =
      degrade(cost_->dma_strided_time(bytes, block_len * sizeof(double),
                                      n_cpes)) *
      n;
  const double start = ledger_.elapsed_s;
  ledger_.dma_put_bytes += bytes * n;
  ledger_.elapsed_s += seconds;
  trace_transfer(*cost_, "dma.put_strided", /*is_get=*/false, bytes * n,
                 start, seconds);
}

}  // namespace swcaffe::hw
