// Timing model for the SW26010 core group.
//
// Every kernel plan in swgemm/swdnn describes its data movement and compute
// as events; CostModel converts events to simulated seconds using the
// calibrated HwParams. The same model backs both the functional micro
// simulator (hw::DmaEngine / hw::RlcFabric charge their real transfers here)
// and the analytic layer estimators used at paper scale.
#pragma once

#include <cstddef>

#include "hw/params.h"

namespace swcaffe::trace {
class Tracer;
}  // namespace swcaffe::trace

namespace swcaffe::sim {
class EventLog;
}  // namespace swcaffe::sim

namespace swcaffe::hw {

/// Accumulated traffic and simulated time of a kernel or plan.
///
/// `elapsed_s` is the simulated wall time (kernels decide how compute and
/// DMA overlap); the byte/flop counters are bookkeeping used by tests (e.g.
/// the mesh-GEMM "touch main memory once" invariant) and bench reports.
struct TrafficLedger {
  std::size_t dma_get_bytes = 0;  ///< main memory -> LDM
  std::size_t dma_put_bytes = 0;  ///< LDM -> main memory
  std::size_t rlc_bytes = 0;      ///< register-level communication volume
  std::size_t mpe_bytes = 0;      ///< memory copies through the MPE
  double flops = 0.0;             ///< arithmetic executed on the CPE cluster
  double elapsed_s = 0.0;         ///< simulated time

  void add(const TrafficLedger& other);
  std::size_t dma_bytes() const { return dma_get_bytes + dma_put_bytes; }
};

/// Converts hardware events to simulated seconds for ONE core group.
class CostModel {
 public:
  explicit CostModel(const HwParams& params = HwParams{}) : params_(params) {}

  const HwParams& params() const { return params_; }

  // --- Tracing ---------------------------------------------------------------
  /// Attaches an optional tracer. The cost model itself stays a pure
  /// function of its parameters — the pointer merely rides along so every
  /// component built on this model (DmaEngine, RlcFabric, the layer
  /// estimators) can emit spans on `track` without new plumbing. Null (the
  /// default) disables tracing at the cost of one pointer test per event.
  void set_tracer(trace::Tracer* tracer, int track = 0) {
    tracer_ = tracer;
    trace_track_ = track;
  }
  trace::Tracer* tracer() const { return tracer_; }
  int trace_track() const { return trace_track_; }

  /// Attaches an optional swsim event log, the tracer's structured twin:
  /// every charge the functional engines (DmaEngine, RlcFabric) price is
  /// also recorded as a sim::Event on `actor`, stamped at the engine's
  /// local elapsed clock, so a swsched timeline can be extracted straight
  /// from what ran (check::timeline_from_events). Null (the default)
  /// disables logging; attaching a log never changes any priced time.
  void set_event_log(sim::EventLog* log, int actor = 0) {
    event_log_ = log;
    event_actor_ = actor;
  }
  sim::EventLog* event_log() const { return event_log_; }
  int event_actor() const { return event_actor_; }

  // --- DMA ------------------------------------------------------------------
  /// Time for `n_cpes` CPEs to each move `bytes_per_cpe` contiguous bytes
  /// between main memory and their LDMs (concurrently, sharing the memory
  /// controller). Models the Fig. 2 "continuous DMA" curves.
  double dma_time(std::size_t bytes_per_cpe, int n_cpes) const;

  /// Aggregate bandwidth achieved by the transfer above (bytes/second).
  double dma_bandwidth(std::size_t bytes_per_cpe, int n_cpes) const;

  /// Time for strided DMA: each CPE moves `bytes_per_cpe` in blocks of
  /// `block_bytes` contiguous bytes. Models the Fig. 2 "strided DMA" curves.
  double dma_strided_time(std::size_t bytes_per_cpe, std::size_t block_bytes,
                          int n_cpes) const;

  double dma_strided_bandwidth(std::size_t bytes_per_cpe,
                               std::size_t block_bytes, int n_cpes) const;

  // --- Compute ----------------------------------------------------------------
  /// Time for `flops` floating point operations on the full CPE cluster at
  /// sustained kernel efficiency. `single_precision` adds the RLC-convert
  /// overhead the paper charges for SP data (Sec. IV-A).
  double compute_time(double flops, bool single_precision = true) const;

  /// Time for `flops` executed on the MPE only (used by the naive baseline).
  double mpe_compute_time(double flops) const;

  // --- MPE memory path ----------------------------------------------------------
  double mpe_copy_time(std::size_t bytes) const;

  // --- Register-level communication ---------------------------------------------
  /// Time to move `bytes` over RLC; broadcast uses the higher aggregate rate.
  double rlc_time(std::size_t bytes, bool broadcast) const;

 private:
  HwParams params_;
  trace::Tracer* tracer_ = nullptr;
  int trace_track_ = 0;
  sim::EventLog* event_log_ = nullptr;
  int event_actor_ = 0;
};

}  // namespace swcaffe::hw
