// Calibrated hardware constants for the SW26010 many-core processor model.
//
// Values come from the swCaffe paper (CLUSTER'18), its Fig. 2 DMA benchmark,
// and the micro-benchmarking papers it cites (Xu et al. IPDPSW'17 for the
// register-level-communication bandwidths, Fang et al. IPDPS'17 for the DMA
// behaviour). All rates are in SI units (bytes/second, Hz, flops/second).
#pragma once

#include <cstddef>

namespace swcaffe::hw {

/// One SW26010 core group (CG): 1 MPE + an 8x8 CPE mesh sharing one memory
/// controller. The full chip has four CGs.
struct HwParams {
  // --- Clocking and mesh geometry -----------------------------------------
  double core_freq_hz = 1.45e9;  ///< MPE and CPE clock.
  int mesh_rows = 8;
  int mesh_cols = 8;
  int num_core_groups = 4;

  // --- Local directive memory (scratchpad) --------------------------------
  std::size_t ldm_bytes = 64 * 1024;     ///< per CPE
  std::size_t icache_bytes = 16 * 1024;  ///< per CPE (not modelled further)

  // --- Compute throughput --------------------------------------------------
  /// Peak of the 8x8 CPE cluster of ONE core group (double precision; the
  /// chip has no faster single-precision path, paper Sec. IV-A).
  double cpe_cluster_flops = 742.4e9;
  /// Peak of the MPE of one core group.
  double mpe_flops = 11.6e9;
  /// Multiplier charged when single-precision data must round-trip through
  /// double-precision registers for RLC (inline SIMD convert, Sec. IV-A).
  double sp_convert_overhead = 1.10;
  /// Fraction of peak a hand-tuned CPE kernel sustains on LDM-resident data
  /// (pipelined fused multiply-add with both issue pipes busy).
  double kernel_efficiency = 0.92;

  // --- DMA between main memory and LDM (paper Fig. 2) ----------------------
  /// Aggregate saturation bandwidth of one CG's memory controller for DMA.
  double dma_peak_bw = 28.0e9;
  /// Ceiling a single CPE's DMA stream can reach.
  double dma_per_cpe_bw = 7.0e9;
  /// Fixed startup latency of one DMA transfer, in core cycles ("hundreds of
  /// cycles", Principle 3; transfers >= 2 KB amortize it).
  double dma_latency_cycles = 278.0;
  /// Extra per-block setup cost for strided DMA, in core cycles. Blocks of
  /// >= 256 B reach "satisfactory" bandwidth (Principle 3).
  double dma_stride_setup_cycles = 35.0;

  // --- MPE path to memory ---------------------------------------------------
  /// Memory-to-memory copy bandwidth through the MPE (paper Sec. III-A:
  /// 9.9 GB/s, versus 28 GB/s via CPE DMA).
  double mpe_copy_bw = 9.9e9;

  // --- Register-level communication (RLC) ----------------------------------
  /// Aggregate P2P RLC bandwidth over the whole mesh when fully pipelined.
  double rlc_p2p_bw = 2549.0e9;
  /// Aggregate row/column broadcast bandwidth when fully pipelined.
  double rlc_bcast_bw = 4461.0e9;
  /// Cycles for one 256-bit register message to cross the bus.
  double rlc_latency_cycles = 11.0;
  /// RLC moves 256-bit (32-byte) packets.
  std::size_t rlc_packet_bytes = 32;

  int mesh_size() const { return mesh_rows * mesh_cols; }
  double cycle_seconds() const { return 1.0 / core_freq_hz; }
};

}  // namespace swcaffe::hw
