#include "hw/chip.h"

#include "base/log.h"

namespace swcaffe::hw {

CoreGroup::CoreGroup(const HwParams& params)
    : params_(params), cost_(params), rlc_(params) {
  ldms_.reserve(params_.mesh_size());
  for (int i = 0; i < params_.mesh_size(); ++i) {
    ldms_.emplace_back(params_.ldm_bytes);
  }
}

Ldm& CoreGroup::ldm(int row, int col) {
  SWC_CHECK_GE(row, 0);
  SWC_CHECK_LT(row, params_.mesh_rows);
  SWC_CHECK_GE(col, 0);
  SWC_CHECK_LT(col, params_.mesh_cols);
  return ldms_[row * params_.mesh_cols + col];
}

void CoreGroup::reset() {
  for (auto& l : ldms_) {
    l.reset();
    // Post-condition the swcheck plans rely on: a reset CPE starts its next
    // kernel with an empty bump allocator (and the same backing storage).
    SWC_CHECK(l.empty());
  }
  rlc_.reset_ledger();
}

Sw26010Chip::Sw26010Chip(const HwParams& params) : params_(params) {
  for (int i = 0; i < params_.num_core_groups; ++i) {
    groups_.push_back(std::make_unique<CoreGroup>(params_));
  }
}

CoreGroup& Sw26010Chip::group(int i) {
  SWC_CHECK_GE(i, 0);
  SWC_CHECK_LT(i, num_core_groups());
  return *groups_[i];
}

double Sw26010Chip::peak_flops() const {
  return params_.cpe_cluster_flops * params_.num_core_groups;
}

}  // namespace swcaffe::hw
