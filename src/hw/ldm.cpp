#include "hw/ldm.h"

#include <algorithm>

#include "base/log.h"

namespace swcaffe::hw {

Ldm::Ldm(std::size_t capacity_bytes)
    : capacity_bytes_(capacity_bytes),
      storage_(capacity_bytes / sizeof(double), 0.0) {}

std::span<double> Ldm::alloc(std::size_t n) {
  SWC_CHECK_MSG(used_ + n <= storage_.size(),
                "LDM overflow: requested " << n * sizeof(double)
                                           << "B with " << used_bytes()
                                           << "B of " << capacity_bytes_
                                           << "B already used");
  std::span<double> out(storage_.data() + used_, n);
  used_ += n;
  peak_ = std::max(peak_, used_);
  return out;
}

void Ldm::reset() {
  // Intentionally leaves storage_ untouched: capacity is fixed hardware, so
  // the model must never re-grow (and thereby move) the scratchpad.
  used_ = 0;
}

}  // namespace swcaffe::hw
