// Register-level communication (RLC) fabric model.
//
// SW26010 CPEs in the same row or column of the 8x8 mesh exchange 256-bit
// messages over register buses in an anonymous producer-consumer pattern
// with FIFO buffers (paper Principle 4). This model moves real data through
// per-CPE FIFO queues (so algorithms built on it are functionally testable)
// and charges transfer volume to a TrafficLedger.
#pragma once

#include <deque>
#include <span>
#include <vector>

#include "hw/cost_model.h"
#include "hw/params.h"

namespace swcaffe::hw {

/// Row/column FIFO fabric of one CPE mesh.
///
/// Hardware constraint enforced: direct RLC is only legal between CPEs that
/// share a row or a column; anything else throws.
class RlcFabric {
 public:
  explicit RlcFabric(const HwParams& params);

  /// CPE (row, src_col) broadcasts `data` to the other 7 CPEs in its row.
  void row_broadcast(int row, int src_col, std::span<const double> data);

  /// CPE (src_row, col) broadcasts `data` to the other 7 CPEs in its column.
  void col_broadcast(int src_row, int col, std::span<const double> data);

  /// P2P send; (src_row, src_col) and (dst_row, dst_col) must share a row or
  /// a column. Blocking-queue semantics are modelled as FIFO order.
  void send(int src_row, int src_col, int dst_row, int dst_col,
            std::span<const double> data);

  /// Pops the oldest pending message for CPE (row, col) from its row bus.
  std::vector<double> receive_row(int row, int col);
  /// Pops the oldest pending message for CPE (row, col) from its column bus.
  std::vector<double> receive_col(int row, int col);

  /// Number of undelivered messages (tests assert it returns to zero).
  std::size_t pending() const;

  /// Traffic charged so far (volume counts payload bytes once per receiver,
  /// matching how the paper accounts RLC bandwidth).
  const TrafficLedger& ledger() const { return ledger_; }
  void reset_ledger() { ledger_ = TrafficLedger{}; }

  /// Attaches an optional tracer (see CostModel::set_tracer): broadcasts and
  /// sends emit "hw.rlc" spans of their charged duration on `track`.
  void set_tracer(trace::Tracer* tracer, int track = 0) {
    cost_.set_tracer(tracer, track);
  }

  /// Attaches an optional swsim event log (see CostModel::set_event_log):
  /// every charged RLC operation is recorded as a sim::Event on `actor`.
  void set_event_log(sim::EventLog* log, int actor = 0) {
    cost_.set_event_log(log, actor);
  }

 private:
  struct Queues {
    std::deque<std::vector<double>> row;  // messages arriving over the row bus
    std::deque<std::vector<double>> col;  // messages arriving over the col bus
  };

  int index(int row, int col) const;
  void check_coord(int row, int col) const;

  HwParams params_;
  CostModel cost_;
  std::vector<Queues> queues_;
  TrafficLedger ledger_;
};

}  // namespace swcaffe::hw
