#include "hw/rlc.h"

#include "base/log.h"
#include "sim/event.h"
#include "trace/tracer.h"

namespace swcaffe::hw {

namespace {

/// Mirrors one charged RLC operation into the attached tracer and/or swsim
/// event log (if any), stamped at `start_s` on the fabric's elapsed clock.
void trace_rlc(const CostModel& cost, const char* name, std::size_t bytes,
               double start_s, double seconds) {
  if (sim::EventLog* log = cost.event_log()) {
    log->charge(cost.event_actor(), start_s, seconds,
                static_cast<std::int64_t>(bytes), name);
  }
  trace::Tracer* tracer = cost.tracer();
  if (!tracer) return;
  const int track = cost.trace_track();
  tracer->begin_span(track, name, "hw.rlc");
  trace::TrafficCounters c;
  c.rlc_bytes = bytes;
  tracer->charge(track, c);
  tracer->end_span(track, seconds);
}

}  // namespace

RlcFabric::RlcFabric(const HwParams& params)
    : params_(params), cost_(params), queues_(params.mesh_size()) {}

int RlcFabric::index(int row, int col) const {
  return row * params_.mesh_cols + col;
}

void RlcFabric::check_coord(int row, int col) const {
  SWC_CHECK_GE(row, 0);
  SWC_CHECK_LT(row, params_.mesh_rows);
  SWC_CHECK_GE(col, 0);
  SWC_CHECK_LT(col, params_.mesh_cols);
}

void RlcFabric::row_broadcast(int row, int src_col,
                              std::span<const double> data) {
  check_coord(row, src_col);
  const std::size_t bytes = data.size() * sizeof(double);
  for (int c = 0; c < params_.mesh_cols; ++c) {
    if (c == src_col) continue;
    queues_[index(row, c)].row.emplace_back(data.begin(), data.end());
    ledger_.rlc_bytes += bytes;
  }
  const double seconds = cost_.rlc_time(bytes, /*broadcast=*/true);
  const double start = ledger_.elapsed_s;
  ledger_.elapsed_s += seconds;
  trace_rlc(cost_, "rlc.row_broadcast",
            bytes * (params_.mesh_cols - 1), start, seconds);
}

void RlcFabric::col_broadcast(int src_row, int col,
                              std::span<const double> data) {
  check_coord(src_row, col);
  const std::size_t bytes = data.size() * sizeof(double);
  for (int r = 0; r < params_.mesh_rows; ++r) {
    if (r == src_row) continue;
    queues_[index(r, col)].col.emplace_back(data.begin(), data.end());
    ledger_.rlc_bytes += bytes;
  }
  const double seconds = cost_.rlc_time(bytes, /*broadcast=*/true);
  const double start = ledger_.elapsed_s;
  ledger_.elapsed_s += seconds;
  trace_rlc(cost_, "rlc.col_broadcast",
            bytes * (params_.mesh_rows - 1), start, seconds);
}

void RlcFabric::send(int src_row, int src_col, int dst_row, int dst_col,
                     std::span<const double> data) {
  check_coord(src_row, src_col);
  check_coord(dst_row, dst_col);
  SWC_CHECK_MSG(src_row == dst_row || src_col == dst_col,
                "RLC is only legal within a row or a column: ("
                    << src_row << "," << src_col << ") -> (" << dst_row << ","
                    << dst_col << ")");
  const std::size_t bytes = data.size() * sizeof(double);
  auto& q = queues_[index(dst_row, dst_col)];
  if (src_row == dst_row) {
    q.row.emplace_back(data.begin(), data.end());
  } else {
    q.col.emplace_back(data.begin(), data.end());
  }
  ledger_.rlc_bytes += bytes;
  const double seconds = cost_.rlc_time(bytes, /*broadcast=*/false);
  const double start = ledger_.elapsed_s;
  ledger_.elapsed_s += seconds;
  trace_rlc(cost_, "rlc.send", bytes, start, seconds);
}

std::vector<double> RlcFabric::receive_row(int row, int col) {
  check_coord(row, col);
  auto& q = queues_[index(row, col)].row;
  SWC_CHECK_MSG(!q.empty(), "RLC row receive on empty FIFO at (" << row << ","
                                                                 << col << ")");
  std::vector<double> out = std::move(q.front());
  q.pop_front();
  return out;
}

std::vector<double> RlcFabric::receive_col(int row, int col) {
  check_coord(row, col);
  auto& q = queues_[index(row, col)].col;
  SWC_CHECK_MSG(!q.empty(), "RLC col receive on empty FIFO at (" << row << ","
                                                                 << col << ")");
  std::vector<double> out = std::move(q.front());
  q.pop_front();
  return out;
}

std::size_t RlcFabric::pending() const {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q.row.size() + q.col.size();
  return n;
}

}  // namespace swcaffe::hw
