// DMA engine model: moves real data between "main memory" (host spans) and
// LDM spans while charging the calibrated transfer costs to a ledger.
//
// The functional path exists so kernels built on it are testable end to end;
// analytic estimators reuse CostModel::dma_* directly without moving bytes.
#pragma once

#include <cstddef>
#include <span>

#include "hw/cost_model.h"

namespace swcaffe::hw {

/// Fault-injection hook for the DMA engine (implemented by swfault). A hook
/// can declare a transfer transiently failed — the engine then re-issues it,
/// charging the transfer cost and ledger bytes once per issue — and degrade
/// throughput by a constant factor. With no hook installed every code path
/// is bit-identical to the fault-free engine.
class DmaFaultHook {
 public:
  virtual ~DmaFaultHook() = default;
  /// Total issues (>= 1) this transfer needs; issues beyond the first are
  /// re-issues after a transient failure.
  virtual int attempts(std::size_t bytes) = 0;
  /// Throughput degradation multiplier (>= 1) applied to every transfer.
  virtual double slowdown() const { return 1.0; }
};

/// DMA engine of one core group. Transfers are described per CPE; `n_cpes`
/// says how many CPEs issue the same-shaped transfer concurrently, which
/// determines the achieved bandwidth (Fig. 2).
class DmaEngine {
 public:
  explicit DmaEngine(const CostModel& cost) : cost_(&cost) {}

  /// Installs (or clears, with nullptr) the fault hook.
  void set_fault_hook(DmaFaultHook* hook) { fault_ = hook; }

  /// Contiguous main-memory -> LDM get of one CPE's block.
  void get(std::span<const double> src, std::span<double> dst, int n_cpes);

  /// Contiguous LDM -> main-memory put of one CPE's block.
  void put(std::span<const double> src, std::span<double> dst, int n_cpes);

  /// Strided get: copies `blocks` runs of `block_len` doubles, reading from
  /// `src` at `src_stride` spacing into densely packed `dst`.
  void get_strided(std::span<const double> src, std::size_t src_stride,
                   std::span<double> dst, std::size_t block_len,
                   std::size_t blocks, int n_cpes);

  /// Strided put: scatters densely packed `src` into `dst` runs spaced by
  /// `dst_stride`.
  void put_strided(std::span<const double> src, std::span<double> dst,
                   std::size_t dst_stride, std::size_t block_len,
                   std::size_t blocks, int n_cpes);

  const TrafficLedger& ledger() const { return ledger_; }
  void reset_ledger() { ledger_ = TrafficLedger{}; }

 private:
  /// Charged issues (>= 1) and degraded per-issue time for one transfer.
  int issues(std::size_t bytes) {
    return fault_ != nullptr ? fault_->attempts(bytes) : 1;
  }
  double degrade(double seconds) const {
    return fault_ != nullptr ? seconds * fault_->slowdown() : seconds;
  }

  const CostModel* cost_;
  TrafficLedger ledger_;
  DmaFaultHook* fault_ = nullptr;
};

}  // namespace swcaffe::hw
