// DMA engine model: moves real data between "main memory" (host spans) and
// LDM spans while charging the calibrated transfer costs to a ledger.
//
// The functional path exists so kernels built on it are testable end to end;
// analytic estimators reuse CostModel::dma_* directly without moving bytes.
#pragma once

#include <cstddef>
#include <span>

#include "hw/cost_model.h"

namespace swcaffe::hw {

/// DMA engine of one core group. Transfers are described per CPE; `n_cpes`
/// says how many CPEs issue the same-shaped transfer concurrently, which
/// determines the achieved bandwidth (Fig. 2).
class DmaEngine {
 public:
  explicit DmaEngine(const CostModel& cost) : cost_(&cost) {}

  /// Contiguous main-memory -> LDM get of one CPE's block.
  void get(std::span<const double> src, std::span<double> dst, int n_cpes);

  /// Contiguous LDM -> main-memory put of one CPE's block.
  void put(std::span<const double> src, std::span<double> dst, int n_cpes);

  /// Strided get: copies `blocks` runs of `block_len` doubles, reading from
  /// `src` at `src_stride` spacing into densely packed `dst`.
  void get_strided(std::span<const double> src, std::size_t src_stride,
                   std::span<double> dst, std::size_t block_len,
                   std::size_t blocks, int n_cpes);

  /// Strided put: scatters densely packed `src` into `dst` runs spaced by
  /// `dst_stride`.
  void put_strided(std::span<const double> src, std::span<double> dst,
                   std::size_t dst_stride, std::size_t block_len,
                   std::size_t blocks, int n_cpes);

  const TrafficLedger& ledger() const { return ledger_; }
  void reset_ledger() { ledger_ = TrafficLedger{}; }

 private:
  const CostModel* cost_;
  TrafficLedger ledger_;
};

}  // namespace swcaffe::hw
