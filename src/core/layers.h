// Concrete layer classes. Construction goes through core::create_layer();
// the classes are exposed for direct use in unit tests.
#pragma once

#include <vector>

#include "core/layer.h"

namespace swcaffe::core {

/// Convolution with the two swCaffe execution plans. In kAuto mode the layer
/// queries the SW26010 cost model at setup and locks the faster plan per
/// direction — the in-simulator equivalent of the paper's "run the first two
/// iterations with each strategy and keep the winner" (Sec. VI-A).
class ConvLayer : public Layer {
 public:
  explicit ConvLayer(const LayerSpec& spec) : Layer(spec) {}
  void setup(const std::vector<tensor::Tensor*>& bottoms,
             const std::vector<tensor::Tensor*>& tops, base::Rng& rng) override;
  void forward(const std::vector<tensor::Tensor*>& bottoms,
               const std::vector<tensor::Tensor*>& tops) override;
  void backward(const std::vector<tensor::Tensor*>& tops,
                const std::vector<tensor::Tensor*>& bottoms,
                const std::vector<bool>& prop_down) override;

  bool uses_implicit_forward() const { return implicit_fwd_; }
  bool uses_implicit_backward() const { return implicit_bwd_; }

  /// Switches the layer onto a tuned strategy assignment (swtune). Must be
  /// called after setup(); requests are clamped by the kernel support
  /// predicates, so an assignment that asks for an unsupported implicit pass
  /// silently keeps the explicit path. Scratch buffers resize lazily on the
  /// next forward/backward, so flipping the plan needs no re-setup.
  void set_plan(const ConvPlanAssignment& assignment);

 private:
  ConvGeom geom_;
  bool implicit_fwd_ = false;
  bool implicit_bwd_ = false;
  std::vector<float> col_buf_;
  std::vector<float> scratch_;
};

class InnerProductLayer : public Layer {
 public:
  explicit InnerProductLayer(const LayerSpec& spec) : Layer(spec) {}
  void setup(const std::vector<tensor::Tensor*>& bottoms,
             const std::vector<tensor::Tensor*>& tops, base::Rng& rng) override;
  void forward(const std::vector<tensor::Tensor*>& bottoms,
               const std::vector<tensor::Tensor*>& tops) override;
  void backward(const std::vector<tensor::Tensor*>& tops,
                const std::vector<tensor::Tensor*>& bottoms,
                const std::vector<bool>& prop_down) override;

 private:
  int m_ = 0, n_ = 0, k_ = 0;
};

/// LSTM over a (T, B, I) sequence -> (T, B, H) hidden states, gates i/f/o/g,
/// zero initial state, full BPTT backward (paper Sec. IV-A's GEMM-dominated
/// recurrent layer).
class LstmLayer : public Layer {
 public:
  explicit LstmLayer(const LayerSpec& spec) : Layer(spec) {}
  void setup(const std::vector<tensor::Tensor*>& bottoms,
             const std::vector<tensor::Tensor*>& tops, base::Rng& rng) override;
  void forward(const std::vector<tensor::Tensor*>& bottoms,
               const std::vector<tensor::Tensor*>& tops) override;
  void backward(const std::vector<tensor::Tensor*>& tops,
                const std::vector<tensor::Tensor*>& bottoms,
                const std::vector<bool>& prop_down) override;

 private:
  int steps_ = 0, batch_ = 0, input_dim_ = 0, hidden_ = 0;
  std::vector<float> gates_;      ///< post-activation i/f/o/g per step
  std::vector<float> cells_;      ///< c_t per step
  std::vector<float> cell_tanh_;  ///< tanh(c_t) per step
};

class ReluLayer : public Layer {
 public:
  explicit ReluLayer(const LayerSpec& spec) : Layer(spec) {}
  void setup(const std::vector<tensor::Tensor*>& bottoms,
             const std::vector<tensor::Tensor*>& tops, base::Rng& rng) override;
  void forward(const std::vector<tensor::Tensor*>& bottoms,
               const std::vector<tensor::Tensor*>& tops) override;
  void backward(const std::vector<tensor::Tensor*>& tops,
                const std::vector<tensor::Tensor*>& bottoms,
                const std::vector<bool>& prop_down) override;
};

class SigmoidLayer : public Layer {
 public:
  explicit SigmoidLayer(const LayerSpec& spec) : Layer(spec) {}
  void setup(const std::vector<tensor::Tensor*>& bottoms,
             const std::vector<tensor::Tensor*>& tops, base::Rng& rng) override;
  void forward(const std::vector<tensor::Tensor*>& bottoms,
               const std::vector<tensor::Tensor*>& tops) override;
  void backward(const std::vector<tensor::Tensor*>& tops,
                const std::vector<tensor::Tensor*>& bottoms,
                const std::vector<bool>& prop_down) override;
};

class TanhLayer : public Layer {
 public:
  explicit TanhLayer(const LayerSpec& spec) : Layer(spec) {}
  void setup(const std::vector<tensor::Tensor*>& bottoms,
             const std::vector<tensor::Tensor*>& tops, base::Rng& rng) override;
  void forward(const std::vector<tensor::Tensor*>& bottoms,
               const std::vector<tensor::Tensor*>& tops) override;
  void backward(const std::vector<tensor::Tensor*>& tops,
                const std::vector<tensor::Tensor*>& bottoms,
                const std::vector<bool>& prop_down) override;
};

class PoolLayer : public Layer {
 public:
  explicit PoolLayer(const LayerSpec& spec) : Layer(spec) {}
  void setup(const std::vector<tensor::Tensor*>& bottoms,
             const std::vector<tensor::Tensor*>& tops, base::Rng& rng) override;
  void forward(const std::vector<tensor::Tensor*>& bottoms,
               const std::vector<tensor::Tensor*>& tops) override;
  void backward(const std::vector<tensor::Tensor*>& tops,
                const std::vector<tensor::Tensor*>& bottoms,
                const std::vector<bool>& prop_down) override;

 private:
  PoolGeom geom_;
  std::vector<int> max_idx_;  ///< argmax per output element (max pooling)
};

/// Batch normalization with learnable scale/shift folded in (the paper's
/// AlexNet refinement replaces LRN with BN, Sec. VI-A).
class BatchNormLayer : public Layer {
 public:
  explicit BatchNormLayer(const LayerSpec& spec) : Layer(spec) {}
  void setup(const std::vector<tensor::Tensor*>& bottoms,
             const std::vector<tensor::Tensor*>& tops, base::Rng& rng) override;
  void forward(const std::vector<tensor::Tensor*>& bottoms,
               const std::vector<tensor::Tensor*>& tops) override;
  void backward(const std::vector<tensor::Tensor*>& tops,
                const std::vector<tensor::Tensor*>& bottoms,
                const std::vector<bool>& prop_down) override;

 private:
  int channels_ = 0;
  std::vector<float> mean_, var_, x_hat_;
  std::vector<float> running_mean_, running_var_;
};

/// Local response normalization across channels (original AlexNet/GoogleNet).
class LrnLayer : public Layer {
 public:
  explicit LrnLayer(const LayerSpec& spec) : Layer(spec) {}
  void setup(const std::vector<tensor::Tensor*>& bottoms,
             const std::vector<tensor::Tensor*>& tops, base::Rng& rng) override;
  void forward(const std::vector<tensor::Tensor*>& bottoms,
               const std::vector<tensor::Tensor*>& tops) override;
  void backward(const std::vector<tensor::Tensor*>& tops,
                const std::vector<tensor::Tensor*>& bottoms,
                const std::vector<bool>& prop_down) override;

 private:
  std::vector<float> scale_;
};

class DropoutLayer : public Layer {
 public:
  explicit DropoutLayer(const LayerSpec& spec) : Layer(spec) {}
  void setup(const std::vector<tensor::Tensor*>& bottoms,
             const std::vector<tensor::Tensor*>& tops, base::Rng& rng) override;
  void forward(const std::vector<tensor::Tensor*>& bottoms,
               const std::vector<tensor::Tensor*>& tops) override;
  void backward(const std::vector<tensor::Tensor*>& tops,
                const std::vector<tensor::Tensor*>& bottoms,
                const std::vector<bool>& prop_down) override;

 private:
  std::vector<float> mask_;
  base::Rng rng_{0x5eed};
};

class SoftmaxLayer : public Layer {
 public:
  explicit SoftmaxLayer(const LayerSpec& spec) : Layer(spec) {}
  void setup(const std::vector<tensor::Tensor*>& bottoms,
             const std::vector<tensor::Tensor*>& tops, base::Rng& rng) override;
  void forward(const std::vector<tensor::Tensor*>& bottoms,
               const std::vector<tensor::Tensor*>& tops) override;
  void backward(const std::vector<tensor::Tensor*>& tops,
                const std::vector<tensor::Tensor*>& bottoms,
                const std::vector<bool>& prop_down) override;
};

/// Softmax + multinomial cross-entropy; bottom(1) holds labels as floats.
class SoftmaxLossLayer : public Layer {
 public:
  explicit SoftmaxLossLayer(const LayerSpec& spec) : Layer(spec) {}
  void setup(const std::vector<tensor::Tensor*>& bottoms,
             const std::vector<tensor::Tensor*>& tops, base::Rng& rng) override;
  void forward(const std::vector<tensor::Tensor*>& bottoms,
               const std::vector<tensor::Tensor*>& tops) override;
  void backward(const std::vector<tensor::Tensor*>& tops,
                const std::vector<tensor::Tensor*>& bottoms,
                const std::vector<bool>& prop_down) override;
  double loss_weight() const override { return 1.0; }

 private:
  std::vector<float> prob_;
};

class AccuracyLayer : public Layer {
 public:
  explicit AccuracyLayer(const LayerSpec& spec) : Layer(spec) {}
  void setup(const std::vector<tensor::Tensor*>& bottoms,
             const std::vector<tensor::Tensor*>& tops, base::Rng& rng) override;
  void forward(const std::vector<tensor::Tensor*>& bottoms,
               const std::vector<tensor::Tensor*>& tops) override;
  void backward(const std::vector<tensor::Tensor*>& tops,
                const std::vector<tensor::Tensor*>& bottoms,
                const std::vector<bool>& prop_down) override;
};

/// Elementwise combination: weighted sum (ResNet shortcut joins; default
/// coefficients are 1) or per-element max (maxout-style), per Caffe's
/// EltwiseParameter.
class EltwiseLayer : public Layer {
 public:
  explicit EltwiseLayer(const LayerSpec& spec) : Layer(spec) {}
  void setup(const std::vector<tensor::Tensor*>& bottoms,
             const std::vector<tensor::Tensor*>& tops, base::Rng& rng) override;
  void forward(const std::vector<tensor::Tensor*>& bottoms,
               const std::vector<tensor::Tensor*>& tops) override;
  void backward(const std::vector<tensor::Tensor*>& tops,
                const std::vector<tensor::Tensor*>& bottoms,
                const std::vector<bool>& prop_down) override;

 private:
  std::vector<int> max_src_;  ///< argmax bottom per element (max mode)
};

/// Channel-axis concatenation (GoogleNet inception joins).
class ConcatLayer : public Layer {
 public:
  explicit ConcatLayer(const LayerSpec& spec) : Layer(spec) {}
  void setup(const std::vector<tensor::Tensor*>& bottoms,
             const std::vector<tensor::Tensor*>& tops, base::Rng& rng) override;
  void forward(const std::vector<tensor::Tensor*>& bottoms,
               const std::vector<tensor::Tensor*>& tops) override;
  void backward(const std::vector<tensor::Tensor*>& tops,
                const std::vector<tensor::Tensor*>& bottoms,
                const std::vector<bool>& prop_down) override;
};

/// Layout transformation layer (paper Sec. IV-C): (B,N,R,C) <-> (R,C,N,B).
/// Direction is chosen by spec.stride: 0 = to RCNB, 1 = back to BNRC.
class TransformLayer : public Layer {
 public:
  explicit TransformLayer(const LayerSpec& spec) : Layer(spec) {}
  void setup(const std::vector<tensor::Tensor*>& bottoms,
             const std::vector<tensor::Tensor*>& tops, base::Rng& rng) override;
  void forward(const std::vector<tensor::Tensor*>& bottoms,
               const std::vector<tensor::Tensor*>& tops) override;
  void backward(const std::vector<tensor::Tensor*>& tops,
                const std::vector<tensor::Tensor*>& bottoms,
                const std::vector<bool>& prop_down) override;
};

/// Deterministic synthetic data source: label-conditioned gaussian images,
/// the stand-in for ImageNet (see DESIGN.md substitutions).
class SyntheticDataLayer : public Layer {
 public:
  explicit SyntheticDataLayer(const LayerSpec& spec) : Layer(spec) {}
  void setup(const std::vector<tensor::Tensor*>& bottoms,
             const std::vector<tensor::Tensor*>& tops, base::Rng& rng) override;
  void forward(const std::vector<tensor::Tensor*>& bottoms,
               const std::vector<tensor::Tensor*>& tops) override;
  void backward(const std::vector<tensor::Tensor*>& tops,
                const std::vector<tensor::Tensor*>& bottoms,
                const std::vector<bool>& prop_down) override;

 private:
  base::Rng rng_{0xda7a};
};

}  // namespace swcaffe::core
