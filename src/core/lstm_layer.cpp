// Long Short-Term Memory layer (paper Sec. IV-A: "more complicated layers,
// such as Long Short Time Memory (LSTM) layers, are mainly involving
// General Matrix to Matrix Multiplication operations").
//
// Input (T, B, I) -> output (T, B, H). Gates in i, f, o, g order share two
// weight matrices: W_x (4H x I) applied to the input and W_h (4H x H)
// applied to the recurrent state, plus a 4H bias. Full BPTT backward.
#include <algorithm>
#include <cmath>
#include <vector>

#include "base/log.h"
#include "core/layers.h"
#include "swgemm/reference.h"
#include "tensor/filler.h"

namespace swcaffe::core {

namespace {

float sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

void LstmLayer::setup(const std::vector<tensor::Tensor*>& bottoms,
                      const std::vector<tensor::Tensor*>& tops,
                      base::Rng& rng) {
  SWC_CHECK_EQ(bottoms.size(), 1u);
  SWC_CHECK_EQ(tops.size(), 1u);
  const tensor::Tensor& in = *bottoms[0];
  SWC_CHECK_MSG(in.num_axes() == 3,
                "LSTM input must be (T, B, I), got " << in.shape_string());
  steps_ = in.dim(0);
  batch_ = in.dim(1);
  input_dim_ = in.dim(2);
  hidden_ = spec_.num_output;
  SWC_CHECK_GT(hidden_, 0);
  tops[0]->reshape({steps_, batch_, hidden_});

  if (params_.empty()) {
    auto wx = std::make_shared<tensor::Tensor>(
        std::vector<int>{4 * hidden_, input_dim_});
    tensor::fill(*wx, spec_.weight_filler, rng);
    params_.push_back(std::move(wx));
    auto wh = std::make_shared<tensor::Tensor>(
        std::vector<int>{4 * hidden_, hidden_});
    tensor::fill(*wh, spec_.weight_filler, rng);
    params_.push_back(std::move(wh));
    if (spec_.bias) {
      auto b = std::make_shared<tensor::Tensor>(std::vector<int>{4 * hidden_});
      tensor::fill(*b, spec_.bias_filler, rng);
      // Unit forget-gate bias: the standard trick for gradient flow.
      for (int h = hidden_; h < 2 * hidden_; ++h) b->data()[h] += 1.0f;
      params_.push_back(std::move(b));
    }
  }

  const std::size_t state = static_cast<std::size_t>(steps_) * batch_ * hidden_;
  gates_.assign(state * 4, 0.0f);
  cells_.assign(state, 0.0f);
  cell_tanh_.assign(state, 0.0f);

  desc_ = LayerDesc{};
  desc_.name = spec_.name;
  desc_.kind = LayerKind::kLSTM;
  // Per-step GEMM: (B x 4H) = (B x (I+H)) * W^T.
  desc_.fc = FcGeom{batch_, 4 * hidden_,
                    static_cast<std::int64_t>(input_dim_) + hidden_};
  desc_.steps = steps_;
  desc_.input_count = static_cast<std::int64_t>(in.count());
  desc_.output_count = static_cast<std::int64_t>(tops[0]->count());
  desc_.param_count = static_cast<std::int64_t>(4) * hidden_ *
                          (input_dim_ + hidden_) +
                      (spec_.bias ? 4 * hidden_ : 0);
}

void LstmLayer::forward(const std::vector<tensor::Tensor*>& bottoms,
                        const std::vector<tensor::Tensor*>& tops) {
  const float* x = bottoms[0]->data_ptr();
  float* h_out = tops[0]->mutable_data_ptr();
  const float* wx = params_[0]->data_ptr();
  const float* wh = params_[1]->data_ptr();
  const float* bias = spec_.bias ? params_[2]->data_ptr() : nullptr;
  const int H = hidden_, B = batch_, I = input_dim_;
  const std::size_t step_in = static_cast<std::size_t>(B) * I;
  const std::size_t step_out = static_cast<std::size_t>(B) * H;
  const std::size_t step_gates = step_out * 4;

  std::vector<float> pre(step_gates);
  for (int t = 0; t < steps_; ++t) {
    // pre (B x 4H) = x_t (B x I) W_x^T + h_{t-1} (B x H) W_h^T + bias
    gemm::sgemm(false, true, B, 4 * H, I, 1.0f, x + t * step_in, wx, 0.0f,
                pre.data());
    if (t > 0) {
      gemm::sgemm(false, true, B, 4 * H, H, 1.0f, h_out + (t - 1) * step_out,
                  wh, 1.0f, pre.data());
    }
    float* gates = gates_.data() + t * step_gates;
    float* c = cells_.data() + t * step_out;
    float* ct = cell_tanh_.data() + t * step_out;
    const float* c_prev = t > 0 ? cells_.data() + (t - 1) * step_out : nullptr;
    for (int b = 0; b < B; ++b) {
      for (int h = 0; h < H; ++h) {
        const std::size_t row = static_cast<std::size_t>(b) * 4 * H;
        auto gate_pre = [&](int g) {
          return pre[row + g * H + h] + (bias != nullptr ? bias[g * H + h] : 0.0f);
        };
        const float gi = sigmoid(gate_pre(0));
        const float gf = sigmoid(gate_pre(1));
        const float go = sigmoid(gate_pre(2));
        const float gg = std::tanh(gate_pre(3));
        const std::size_t idx = static_cast<std::size_t>(b) * H + h;
        gates[row + 0 * H + h] = gi;
        gates[row + 1 * H + h] = gf;
        gates[row + 2 * H + h] = go;
        gates[row + 3 * H + h] = gg;
        const float prev = c_prev != nullptr ? c_prev[idx] : 0.0f;
        c[idx] = gf * prev + gi * gg;
        ct[idx] = std::tanh(c[idx]);
        h_out[t * step_out + idx] = go * ct[idx];
      }
    }
  }
}

void LstmLayer::backward(const std::vector<tensor::Tensor*>& tops,
                         const std::vector<tensor::Tensor*>& bottoms,
                         const std::vector<bool>& prop_down) {
  const float* x = bottoms[0]->data_ptr();
  const float* h_out = tops[0]->data_ptr();
  auto top_diff = tops[0]->diff();
  const float* wx = params_[0]->data_ptr();
  const float* wh = params_[1]->data_ptr();
  float* wx_diff = params_[0]->diff().data();
  float* wh_diff = params_[1]->diff().data();
  float* b_diff = spec_.bias ? params_[2]->diff().data() : nullptr;
  const bool prop_input = !prop_down.empty() && prop_down[0];
  const int H = hidden_, B = batch_, I = input_dim_;
  const std::size_t step_in = static_cast<std::size_t>(B) * I;
  const std::size_t step_out = static_cast<std::size_t>(B) * H;
  const std::size_t step_gates = step_out * 4;

  std::vector<float> dh_next(step_out, 0.0f);  // dL/dh flowing from t+1
  std::vector<float> dc_next(step_out, 0.0f);  // dL/dc flowing from t+1
  std::vector<float> dpre(step_gates);         // pre-activation gate grads
  std::vector<float> dx_step(step_in);

  for (int t = steps_ - 1; t >= 0; --t) {
    const float* gates = gates_.data() + t * step_gates;
    const float* ct = cell_tanh_.data() + t * step_out;
    const float* c_prev =
        t > 0 ? cells_.data() + (t - 1) * step_out : nullptr;
    for (int b = 0; b < B; ++b) {
      for (int h = 0; h < H; ++h) {
        const std::size_t idx = static_cast<std::size_t>(b) * H + h;
        const std::size_t row = static_cast<std::size_t>(b) * 4 * H;
        const float gi = gates[row + 0 * H + h];
        const float gf = gates[row + 1 * H + h];
        const float go = gates[row + 2 * H + h];
        const float gg = gates[row + 3 * H + h];
        const float dh = top_diff[t * step_out + idx] + dh_next[idx];
        float dc = dc_next[idx] + dh * go * (1.0f - ct[idx] * ct[idx]);
        const float d_go = dh * ct[idx];
        const float d_gi = dc * gg;
        const float d_gg = dc * gi;
        const float d_gf = dc * (c_prev != nullptr ? c_prev[idx] : 0.0f);
        dc_next[idx] = dc * gf;
        dpre[row + 0 * H + h] = d_gi * gi * (1.0f - gi);
        dpre[row + 1 * H + h] = d_gf * gf * (1.0f - gf);
        dpre[row + 2 * H + h] = d_go * go * (1.0f - go);
        dpre[row + 3 * H + h] = d_gg * (1.0f - gg * gg);
      }
    }
    // Parameter gradients: dW_x += dpre^T x_t, dW_h += dpre^T h_{t-1}.
    gemm::sgemm(true, false, 4 * H, I, B, 1.0f, dpre.data(), x + t * step_in,
                1.0f, wx_diff);
    if (t > 0) {
      gemm::sgemm(true, false, 4 * H, H, B, 1.0f, dpre.data(),
                  h_out + (t - 1) * step_out, 1.0f, wh_diff);
    }
    if (b_diff != nullptr) {
      for (int b = 0; b < B; ++b) {
        for (int g = 0; g < 4 * H; ++g) {
          b_diff[g] += dpre[static_cast<std::size_t>(b) * 4 * H + g];
        }
      }
    }
    // Recurrent gradient: dh_{t-1} = dpre W_h; input gradient: dx = dpre W_x.
    if (t > 0) {
      gemm::sgemm(false, false, B, H, 4 * H, 1.0f, dpre.data(), wh, 0.0f,
                  dh_next.data());
    }
    if (prop_input) {
      gemm::sgemm(false, false, B, I, 4 * H, 1.0f, dpre.data(), wx, 0.0f,
                  dx_step.data());
      auto bd = bottoms[0]->diff();
      for (std::size_t i = 0; i < step_in; ++i) {
        bd[t * step_in + i] += dx_step[i];
      }
    }
  }
}

}  // namespace swcaffe::core
