#include "core/proto.h"

#include <cctype>
#include <fstream>
#include <map>
#include <sstream>

#include "base/log.h"

namespace swcaffe::core {

namespace {

// --- Tokenizer -----------------------------------------------------------------

struct Token {
  enum Kind { kIdent, kString, kNumber, kLBrace, kRBrace, kColon, kEnd };
  Kind kind = kEnd;
  std::string text;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Token next() {
    skip_ws_and_comments();
    Token t;
    t.line = line_;
    if (pos_ >= text_.size()) {
      t.kind = Token::kEnd;
      return t;
    }
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      t.kind = Token::kLBrace;
      return t;
    }
    if (c == '}') {
      ++pos_;
      t.kind = Token::kRBrace;
      return t;
    }
    if (c == ':') {
      ++pos_;
      t.kind = Token::kColon;
      return t;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++pos_;
      const std::size_t start = pos_;
      while (pos_ < text_.size() && text_[pos_] != quote) ++pos_;
      SWC_CHECK_MSG(pos_ < text_.size(),
                    "prototxt line " << line_ << ": unterminated string");
      t.kind = Token::kString;
      t.text = text_.substr(start, pos_ - start);
      ++pos_;
      return t;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '.') {
      const std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '.' || text_[pos_] == '-' || text_[pos_] == '+')) {
        ++pos_;
      }
      t.kind = Token::kNumber;
      t.text = text_.substr(start, pos_ - start);
      return t;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      const std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      t.kind = Token::kIdent;
      t.text = text_.substr(start, pos_ - start);
      return t;
    }
    SWC_CHECK_MSG(false, "prototxt line " << line_ << ": unexpected character '"
                                          << c << "'");
    return t;
  }

 private:
  void skip_ws_and_comments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        return;
      }
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

// --- Generic field tree -----------------------------------------------------------

/// Flat multimap of (key -> values) with nested blocks flattened; repeated
/// keys keep order. Enough structure for this dialect.
struct Fields {
  std::vector<std::pair<std::string, std::string>> scalars;
  std::vector<std::pair<std::string, Fields>> blocks;

  const std::string* find(const std::string& key) const {
    for (const auto& [k, v] : scalars) {
      if (k == key) return &v;
    }
    for (const auto& [k, b] : blocks) {
      (void)k;
      if (const std::string* v = b.find(key)) return v;
    }
    return nullptr;
  }

  std::vector<std::string> find_all(const std::string& key) const {
    std::vector<std::string> out;
    for (const auto& [k, v] : scalars) {
      if (k == key) out.push_back(v);
    }
    for (const auto& [k, b] : blocks) {
      (void)k;
      for (auto& v : b.find_all(key)) out.push_back(v);
    }
    return out;
  }
};

/// Parses fields until the matching '}' (or end of input at top level).
Fields parse_fields(Lexer& lex, bool top_level, int depth = 0) {
  SWC_CHECK_MSG(depth < 16, "prototxt: nesting too deep");
  Fields f;
  for (;;) {
    Token t = lex.next();
    if (t.kind == Token::kEnd) {
      SWC_CHECK_MSG(top_level, "prototxt: unexpected end of input (missing '}')");
      return f;
    }
    if (t.kind == Token::kRBrace) {
      SWC_CHECK_MSG(!top_level, "prototxt line " << t.line << ": stray '}'");
      return f;
    }
    SWC_CHECK_MSG(t.kind == Token::kIdent,
                  "prototxt line " << t.line << ": expected a field name");
    const std::string key = t.text;
    Token sep = lex.next();
    if (sep.kind == Token::kLBrace) {
      f.blocks.emplace_back(key, parse_fields(lex, false, depth + 1));
      continue;
    }
    SWC_CHECK_MSG(sep.kind == Token::kColon,
                  "prototxt line " << sep.line << ": expected ':' or '{' after '"
                                   << key << "'");
    Token value = lex.next();
    if (value.kind == Token::kLBrace) {  // "key: { ... }" variant
      f.blocks.emplace_back(key, parse_fields(lex, false, depth + 1));
      continue;
    }
    SWC_CHECK_MSG(value.kind == Token::kString || value.kind == Token::kNumber ||
                      value.kind == Token::kIdent,
                  "prototxt line " << value.line << ": expected a value for '"
                                   << key << "'");
    f.scalars.emplace_back(key, value.text);
  }
}

// --- Conversion helpers -------------------------------------------------------------

int to_int(const std::string& v, const char* key) {
  try {
    return std::stoi(v);
  } catch (...) {
    SWC_CHECK_MSG(false, "prototxt: '" << key << ": " << v
                                       << "' is not an integer");
  }
  return 0;
}

float to_float(const std::string& v, const char* key) {
  try {
    return std::stof(v);
  } catch (...) {
    SWC_CHECK_MSG(false, "prototxt: '" << key << ": " << v
                                       << "' is not a number");
  }
  return 0.0f;
}

bool to_bool(const std::string& v, const char* key) {
  if (v == "true" || v == "1") return true;
  if (v == "false" || v == "0") return false;
  SWC_CHECK_MSG(false, "prototxt: '" << key << ": " << v
                                     << "' is not a boolean");
  return false;
}

LayerKind kind_from_type(const std::string& type) {
  static const std::map<std::string, LayerKind> kMap = {
      {"Data", LayerKind::kData},
      {"Convolution", LayerKind::kConv},
      {"InnerProduct", LayerKind::kInnerProduct},
      {"LSTM", LayerKind::kLSTM},
      {"ReLU", LayerKind::kReLU},
      {"Sigmoid", LayerKind::kSigmoid},
      {"TanH", LayerKind::kTanH},
      {"Pooling", LayerKind::kPool},
      {"BatchNorm", LayerKind::kBatchNorm},
      {"LRN", LayerKind::kLRN},
      {"Dropout", LayerKind::kDropout},
      {"Softmax", LayerKind::kSoftmax},
      {"SoftmaxWithLoss", LayerKind::kSoftmaxLoss},
      {"Accuracy", LayerKind::kAccuracy},
      {"Eltwise", LayerKind::kEltwise},
      {"Concat", LayerKind::kConcat},
      {"TensorTransform", LayerKind::kTransform},
  };
  auto it = kMap.find(type);
  SWC_CHECK_MSG(it != kMap.end(), "prototxt: unknown layer type '" << type
                                                                   << "'");
  return it->second;
}

LayerSpec layer_from_fields(const Fields& f) {
  LayerSpec spec;
  const std::string* name = f.find("name");
  SWC_CHECK_MSG(name != nullptr, "prototxt: layer missing 'name'");
  spec.name = *name;
  const std::string* type = f.find("type");
  SWC_CHECK_MSG(type != nullptr,
                "prototxt: layer '" << spec.name << "' missing 'type'");
  spec.kind = kind_from_type(*type);
  spec.bottoms = f.find_all("bottom");
  spec.tops = f.find_all("top");

  if (const auto* v = f.find("num_output")) spec.num_output = to_int(*v, "num_output");
  if (const auto* v = f.find("kernel_size")) spec.kernel = to_int(*v, "kernel_size");
  if (const auto* v = f.find("stride")) spec.stride = to_int(*v, "stride");
  if (const auto* v = f.find("pad")) spec.pad = to_int(*v, "pad");
  if (const auto* v = f.find("bias_term")) spec.bias = to_bool(*v, "bias_term");
  if (const auto* v = f.find("group")) spec.group = to_int(*v, "group");
  if (const auto* v = f.find("engine")) {
    if (*v == "AUTO") {
      spec.strategy = ConvStrategy::kAuto;
    } else if (*v == "EXPLICIT") {
      spec.strategy = ConvStrategy::kExplicit;
    } else if (*v == "IMPLICIT") {
      spec.strategy = ConvStrategy::kImplicit;
    } else {
      SWC_CHECK_MSG(false, "prototxt: unknown engine '" << *v << "'");
    }
  }
  if (spec.kind == LayerKind::kPool) {
    if (const auto* v = f.find("pool")) {
      if (*v == "MAX") {
        spec.pool_method = PoolMethod::kMax;
      } else if (*v == "AVE") {
        spec.pool_method = PoolMethod::kAve;
      } else {
        SWC_CHECK_MSG(false, "prototxt: unknown pool method '" << *v << "'");
      }
    }
    if (const auto* v = f.find("kernel_size")) spec.pool_kernel = to_int(*v, "kernel_size");
    if (const auto* v = f.find("stride")) spec.pool_stride = to_int(*v, "stride");
    if (const auto* v = f.find("pad")) spec.pool_pad = to_int(*v, "pad");
    if (const auto* v = f.find("global_pooling")) {
      spec.global_pool = to_bool(*v, "global_pooling");
    }
  }
  if (const auto* v = f.find("dropout_ratio")) {
    spec.dropout_ratio = to_float(*v, "dropout_ratio");
  }
  if (const auto* v = f.find("moving_average_fraction")) {
    spec.bn_momentum = to_float(*v, "moving_average_fraction");
  }
  if (const auto* v = f.find("eps")) spec.bn_eps = to_float(*v, "eps");
  if (const auto* v = f.find("local_size")) spec.lrn_size = to_int(*v, "local_size");
  if (const auto* v = f.find("alpha")) spec.lrn_alpha = to_float(*v, "alpha");
  if (const auto* v = f.find("beta")) spec.lrn_beta = to_float(*v, "beta");
  if (spec.kind == LayerKind::kData) {
    for (const auto& d : f.find_all("dim")) {
      spec.data_shape.push_back(to_int(d, "dim"));
    }
    if (const auto* v = f.find("num_classes")) {
      spec.num_classes = to_int(*v, "num_classes");
    }
  }
  if (spec.kind == LayerKind::kTransform) {
    if (const auto* v = f.find("direction")) {
      // "TO_RCNB" | "TO_BNRC", stored in the stride field (see layers.h).
      spec.stride = (*v == "TO_BNRC") ? 1 : 0;
    }
  }
  return spec;
}

}  // namespace

NetSpec parse_net_prototxt(const std::string& text) {
  Lexer lex(text);
  const Fields root = parse_fields(lex, /*top_level=*/true);
  NetSpec spec;
  if (const auto* v = root.find("name")) spec.name = *v;

  // "input:" declarations with following input_dim entries: match them up
  // positionally, as Caffe's legacy input format does.
  std::vector<std::string> inputs;
  std::vector<int> dims;
  for (const auto& [k, v] : root.scalars) {
    if (k == "input") {
      inputs.push_back(v);
      dims.push_back(-1);  // marker for "new input starts here"
    } else if (k == "input_dim") {
      SWC_CHECK_MSG(!inputs.empty(),
                    "prototxt: input_dim before any 'input:'");
      dims.push_back(to_int(v, "input_dim"));
    }
  }
  std::vector<int> current;
  std::size_t input_idx = 0;
  for (std::size_t i = 0; i < dims.size(); ++i) {
    if (dims[i] == -1) {
      if (!current.empty()) {
        spec.inputs.push_back({inputs[input_idx++], current});
        current.clear();
      }
    } else {
      current.push_back(dims[i]);
    }
  }
  if (!current.empty()) spec.inputs.push_back({inputs[input_idx], current});

  for (const auto& [key, block] : root.blocks) {
    if (key == "layer" || key == "layers") {
      spec.layers.push_back(layer_from_fields(block));
    }
  }
  return spec;
}

NetSpec load_net_prototxt(const std::string& path) {
  std::ifstream is(path);
  SWC_CHECK_MSG(is.is_open(), "cannot open prototxt " << path);
  std::stringstream ss;
  ss << is.rdbuf();
  return parse_net_prototxt(ss.str());
}

namespace {

const char* pool_name(PoolMethod m) {
  return m == PoolMethod::kMax ? "MAX" : "AVE";
}

const char* engine_name(ConvStrategy s) {
  switch (s) {
    case ConvStrategy::kAuto:
      return "AUTO";
    case ConvStrategy::kExplicit:
      return "EXPLICIT";
    case ConvStrategy::kImplicit:
      return "IMPLICIT";
  }
  return "AUTO";
}

}  // namespace

std::string net_spec_to_prototxt(const NetSpec& spec) {
  std::ostringstream os;
  os << "name: \"" << spec.name << "\"\n";
  for (const auto& [name, shape] : spec.inputs) {
    os << "input: \"" << name << "\"";
    for (int d : shape) os << " input_dim: " << d;
    os << "\n";
  }
  for (const auto& l : spec.layers) {
    os << "layer {\n";
    os << "  name: \"" << l.name << "\"  type: \"" << layer_kind_name(l.kind)
       << "\"\n";
    for (const auto& b : l.bottoms) os << "  bottom: \"" << b << "\"\n";
    for (const auto& t : l.tops) os << "  top: \"" << t << "\"\n";
    switch (l.kind) {
      case LayerKind::kConv:
        os << "  convolution_param { num_output: " << l.num_output
           << " kernel_size: " << l.kernel << " stride: " << l.stride
           << " pad: " << l.pad << " group: " << l.group
           << " bias_term: " << (l.bias ? "true" : "false")
           << " engine: " << engine_name(l.strategy) << " }\n";
        break;
      case LayerKind::kInnerProduct:
      case LayerKind::kLSTM:
        os << "  inner_product_param { num_output: " << l.num_output
           << " bias_term: " << (l.bias ? "true" : "false") << " }\n";
        break;
      case LayerKind::kPool:
        os << "  pooling_param { pool: " << pool_name(l.pool_method)
           << " kernel_size: " << l.pool_kernel << " stride: " << l.pool_stride
           << " pad: " << l.pool_pad
           << " global_pooling: " << (l.global_pool ? "true" : "false")
           << " }\n";
        break;
      case LayerKind::kDropout:
        os << "  dropout_param { dropout_ratio: " << l.dropout_ratio << " }\n";
        break;
      case LayerKind::kBatchNorm:
        os << "  batch_norm_param { moving_average_fraction: " << l.bn_momentum
           << " eps: " << l.bn_eps << " }\n";
        break;
      case LayerKind::kLRN:
        os << "  lrn_param { local_size: " << l.lrn_size
           << " alpha: " << l.lrn_alpha << " beta: " << l.lrn_beta << " }\n";
        break;
      case LayerKind::kData: {
        os << "  data_param {";
        for (int d : l.data_shape) os << " dim: " << d;
        os << " num_classes: " << l.num_classes << " }\n";
        break;
      }
      case LayerKind::kTransform:
        os << "  transform_param { direction: "
           << (l.stride == 1 ? "TO_BNRC" : "TO_RCNB") << " }\n";
        break;
      default:
        break;
    }
    os << "}\n";
  }
  return os.str();
}

SolverSpec parse_solver_prototxt(const std::string& text) {
  Lexer lex(text);
  const Fields root = parse_fields(lex, /*top_level=*/true);
  SolverSpec spec;
  if (const auto* v = root.find("base_lr")) spec.base_lr = to_float(*v, "base_lr");
  if (const auto* v = root.find("momentum")) spec.momentum = to_float(*v, "momentum");
  if (const auto* v = root.find("weight_decay")) {
    spec.weight_decay = to_float(*v, "weight_decay");
  }
  if (const auto* v = root.find("gamma")) spec.gamma = to_float(*v, "gamma");
  if (const auto* v = root.find("stepsize")) spec.step_size = to_int(*v, "stepsize");
  if (const auto* v = root.find("power")) spec.power = to_float(*v, "power");
  if (const auto* v = root.find("max_iter")) spec.max_iter = to_int(*v, "max_iter");
  if (const auto* v = root.find("lr_policy")) {
    if (*v == "fixed") {
      spec.policy = LrPolicy::kFixed;
    } else if (*v == "step") {
      spec.policy = LrPolicy::kStep;
    } else if (*v == "poly") {
      spec.policy = LrPolicy::kPoly;
    } else if (*v == "inv") {
      spec.policy = LrPolicy::kInv;
    } else {
      SWC_CHECK_MSG(false, "prototxt: unknown lr_policy '" << *v << "'");
    }
  }
  if (const auto* v = root.find("type")) {
    if (*v == "SGD") {
      spec.type = SolverType::kSgd;
    } else if (*v == "Nesterov") {
      spec.type = SolverType::kNesterov;
    } else {
      SWC_CHECK_MSG(false, "prototxt: unknown solver type '" << *v << "'");
    }
  }
  return spec;
}

SolverSpec load_solver_prototxt(const std::string& path) {
  std::ifstream is(path);
  SWC_CHECK_MSG(is.is_open(), "cannot open solver prototxt " << path);
  std::stringstream ss;
  ss << is.rdbuf();
  return parse_solver_prototxt(ss.str());
}

}  // namespace swcaffe::core
