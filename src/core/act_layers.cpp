// ReLU, Dropout, Softmax, SoftmaxWithLoss and Accuracy layers.
#include <algorithm>
#include <cmath>

#include "base/log.h"
#include "core/layers.h"

namespace swcaffe::core {

namespace {

void fill_simple_desc(LayerDesc& d, const LayerSpec& spec, LayerKind kind,
                      const tensor::Tensor& in, const tensor::Tensor& out) {
  d = LayerDesc{};
  d.name = spec.name;
  d.kind = kind;
  d.input_count = static_cast<std::int64_t>(in.count());
  d.output_count = static_cast<std::int64_t>(out.count());
}

}  // namespace

// --- ReLU --------------------------------------------------------------------

void ReluLayer::setup(const std::vector<tensor::Tensor*>& bottoms,
                      const std::vector<tensor::Tensor*>& tops,
                      base::Rng& /*rng*/) {
  SWC_CHECK_EQ(bottoms.size(), 1u);
  tops[0]->reshape_like(*bottoms[0]);
  fill_simple_desc(desc_, spec_, LayerKind::kReLU, *bottoms[0], *tops[0]);
}

void ReluLayer::forward(const std::vector<tensor::Tensor*>& bottoms,
                        const std::vector<tensor::Tensor*>& tops) {
  auto in = bottoms[0]->data();
  auto out = tops[0]->data();
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = std::max(0.0f, in[i]);
}

void ReluLayer::backward(const std::vector<tensor::Tensor*>& tops,
                         const std::vector<tensor::Tensor*>& bottoms,
                         const std::vector<bool>& prop_down) {
  if (prop_down.empty() || !prop_down[0]) return;
  auto in = bottoms[0]->data();
  auto bd = bottoms[0]->diff();
  auto td = tops[0]->diff();
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (in[i] > 0.0f) bd[i] += td[i];
  }
}

// --- Sigmoid -------------------------------------------------------------------

void SigmoidLayer::setup(const std::vector<tensor::Tensor*>& bottoms,
                         const std::vector<tensor::Tensor*>& tops,
                         base::Rng& /*rng*/) {
  SWC_CHECK_EQ(bottoms.size(), 1u);
  tops[0]->reshape_like(*bottoms[0]);
  fill_simple_desc(desc_, spec_, LayerKind::kSigmoid, *bottoms[0], *tops[0]);
}

void SigmoidLayer::forward(const std::vector<tensor::Tensor*>& bottoms,
                           const std::vector<tensor::Tensor*>& tops) {
  auto in = bottoms[0]->data();
  auto out = tops[0]->data();
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = 1.0f / (1.0f + std::exp(-in[i]));
  }
}

void SigmoidLayer::backward(const std::vector<tensor::Tensor*>& tops,
                            const std::vector<tensor::Tensor*>& bottoms,
                            const std::vector<bool>& prop_down) {
  if (prop_down.empty() || !prop_down[0]) return;
  auto y = tops[0]->data();
  auto td = tops[0]->diff();
  auto bd = bottoms[0]->diff();
  for (std::size_t i = 0; i < y.size(); ++i) {
    bd[i] += td[i] * y[i] * (1.0f - y[i]);
  }
}

// --- TanH -----------------------------------------------------------------------

void TanhLayer::setup(const std::vector<tensor::Tensor*>& bottoms,
                      const std::vector<tensor::Tensor*>& tops,
                      base::Rng& /*rng*/) {
  SWC_CHECK_EQ(bottoms.size(), 1u);
  tops[0]->reshape_like(*bottoms[0]);
  fill_simple_desc(desc_, spec_, LayerKind::kTanH, *bottoms[0], *tops[0]);
}

void TanhLayer::forward(const std::vector<tensor::Tensor*>& bottoms,
                        const std::vector<tensor::Tensor*>& tops) {
  auto in = bottoms[0]->data();
  auto out = tops[0]->data();
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = std::tanh(in[i]);
}

void TanhLayer::backward(const std::vector<tensor::Tensor*>& tops,
                         const std::vector<tensor::Tensor*>& bottoms,
                         const std::vector<bool>& prop_down) {
  if (prop_down.empty() || !prop_down[0]) return;
  auto y = tops[0]->data();
  auto td = tops[0]->diff();
  auto bd = bottoms[0]->diff();
  for (std::size_t i = 0; i < y.size(); ++i) {
    bd[i] += td[i] * (1.0f - y[i] * y[i]);
  }
}

// --- Dropout -------------------------------------------------------------------

void DropoutLayer::setup(const std::vector<tensor::Tensor*>& bottoms,
                         const std::vector<tensor::Tensor*>& tops,
                         base::Rng& /*rng*/) {
  SWC_CHECK_EQ(bottoms.size(), 1u);
  SWC_CHECK_GT(spec_.dropout_ratio, 0.0f);
  SWC_CHECK_LT(spec_.dropout_ratio, 1.0f);
  tops[0]->reshape_like(*bottoms[0]);
  mask_.assign(bottoms[0]->count(), 1.0f);
  fill_simple_desc(desc_, spec_, LayerKind::kDropout, *bottoms[0], *tops[0]);
}

void DropoutLayer::forward(const std::vector<tensor::Tensor*>& bottoms,
                           const std::vector<tensor::Tensor*>& tops) {
  auto in = bottoms[0]->data();
  auto out = tops[0]->data();
  if (phase_ == Phase::kTest) {
    std::copy(in.begin(), in.end(), out.begin());
    return;
  }
  // Inverted dropout: scale kept activations so test time is an identity.
  const float keep = 1.0f - spec_.dropout_ratio;
  const float scale = 1.0f / keep;
  for (std::size_t i = 0; i < in.size(); ++i) {
    mask_[i] = rng_.bernoulli(keep) ? scale : 0.0f;
    out[i] = in[i] * mask_[i];
  }
}

void DropoutLayer::backward(const std::vector<tensor::Tensor*>& tops,
                            const std::vector<tensor::Tensor*>& bottoms,
                            const std::vector<bool>& prop_down) {
  if (prop_down.empty() || !prop_down[0]) return;
  auto bd = bottoms[0]->diff();
  auto td = tops[0]->diff();
  if (phase_ == Phase::kTest) {
    for (std::size_t i = 0; i < bd.size(); ++i) bd[i] += td[i];
    return;
  }
  for (std::size_t i = 0; i < bd.size(); ++i) bd[i] += td[i] * mask_[i];
}

// --- Softmax -------------------------------------------------------------------

namespace {

/// Row-wise softmax of (rows x classes).
void softmax_rows(const float* in, int rows, int classes, float* out) {
  for (int r = 0; r < rows; ++r) {
    const float* x = in + static_cast<std::size_t>(r) * classes;
    float* y = out + static_cast<std::size_t>(r) * classes;
    float mx = x[0];
    for (int c = 1; c < classes; ++c) mx = std::max(mx, x[c]);
    float sum = 0.0f;
    for (int c = 0; c < classes; ++c) {
      y[c] = std::exp(x[c] - mx);
      sum += y[c];
    }
    const float inv = 1.0f / sum;
    for (int c = 0; c < classes; ++c) y[c] *= inv;
  }
}

}  // namespace

void SoftmaxLayer::setup(const std::vector<tensor::Tensor*>& bottoms,
                         const std::vector<tensor::Tensor*>& tops,
                         base::Rng& /*rng*/) {
  SWC_CHECK_EQ(bottoms.size(), 1u);
  tops[0]->reshape_like(*bottoms[0]);
  fill_simple_desc(desc_, spec_, LayerKind::kSoftmax, *bottoms[0], *tops[0]);
}

void SoftmaxLayer::forward(const std::vector<tensor::Tensor*>& bottoms,
                           const std::vector<tensor::Tensor*>& tops) {
  const int rows = bottoms[0]->dim(0);
  const int classes = static_cast<int>(bottoms[0]->count()) / rows;
  softmax_rows(bottoms[0]->data_ptr(), rows, classes,
               tops[0]->mutable_data_ptr());
}

void SoftmaxLayer::backward(const std::vector<tensor::Tensor*>& tops,
                            const std::vector<tensor::Tensor*>& bottoms,
                            const std::vector<bool>& prop_down) {
  if (prop_down.empty() || !prop_down[0]) return;
  const int rows = bottoms[0]->dim(0);
  const int classes = static_cast<int>(bottoms[0]->count()) / rows;
  auto y = tops[0]->data();
  auto td = tops[0]->diff();
  auto bd = bottoms[0]->diff();
  for (int r = 0; r < rows; ++r) {
    const std::size_t base = static_cast<std::size_t>(r) * classes;
    float dot = 0.0f;
    for (int c = 0; c < classes; ++c) dot += td[base + c] * y[base + c];
    for (int c = 0; c < classes; ++c) {
      bd[base + c] += y[base + c] * (td[base + c] - dot);
    }
  }
}

// --- SoftmaxWithLoss --------------------------------------------------------

void SoftmaxLossLayer::setup(const std::vector<tensor::Tensor*>& bottoms,
                             const std::vector<tensor::Tensor*>& tops,
                             base::Rng& /*rng*/) {
  SWC_CHECK_EQ(bottoms.size(), 2u);  // scores, labels
  tops[0]->reshape({1});
  prob_.assign(bottoms[0]->count(), 0.0f);
  fill_simple_desc(desc_, spec_, LayerKind::kSoftmaxLoss, *bottoms[0],
                   *tops[0]);
}

void SoftmaxLossLayer::forward(const std::vector<tensor::Tensor*>& bottoms,
                               const std::vector<tensor::Tensor*>& tops) {
  const int rows = bottoms[0]->dim(0);
  const int classes = static_cast<int>(bottoms[0]->count()) / rows;
  SWC_CHECK_EQ(bottoms[1]->count(), static_cast<std::size_t>(rows));
  prob_.resize(bottoms[0]->count());
  softmax_rows(bottoms[0]->data_ptr(), rows, classes, prob_.data());
  auto labels = bottoms[1]->data();
  double loss = 0.0;
  for (int r = 0; r < rows; ++r) {
    const int label = static_cast<int>(labels[r]);
    SWC_CHECK_GE(label, 0);
    SWC_CHECK_LT(label, classes);
    const float p = prob_[static_cast<std::size_t>(r) * classes + label];
    loss -= std::log(std::max(p, 1e-20f));
  }
  tops[0]->data()[0] = static_cast<float>(loss / rows);
}

void SoftmaxLossLayer::backward(const std::vector<tensor::Tensor*>& tops,
                                const std::vector<tensor::Tensor*>& bottoms,
                                const std::vector<bool>& prop_down) {
  if (prop_down.empty() || !prop_down[0]) return;
  const int rows = bottoms[0]->dim(0);
  const int classes = static_cast<int>(bottoms[0]->count()) / rows;
  auto labels = bottoms[1]->data();
  auto bd = bottoms[0]->diff();
  const float top_diff = tops[0]->diff()[0] != 0.0f ? tops[0]->diff()[0] : 1.0f;
  const float scale = top_diff / rows;
  for (int r = 0; r < rows; ++r) {
    const std::size_t base = static_cast<std::size_t>(r) * classes;
    const int label = static_cast<int>(labels[r]);
    for (int c = 0; c < classes; ++c) {
      const float grad = prob_[base + c] - (c == label ? 1.0f : 0.0f);
      bd[base + c] += scale * grad;
    }
  }
}

// --- Accuracy -------------------------------------------------------------------

void AccuracyLayer::setup(const std::vector<tensor::Tensor*>& bottoms,
                          const std::vector<tensor::Tensor*>& tops,
                          base::Rng& /*rng*/) {
  SWC_CHECK_EQ(bottoms.size(), 2u);
  tops[0]->reshape({1});
  fill_simple_desc(desc_, spec_, LayerKind::kAccuracy, *bottoms[0], *tops[0]);
}

void AccuracyLayer::forward(const std::vector<tensor::Tensor*>& bottoms,
                            const std::vector<tensor::Tensor*>& tops) {
  const int rows = bottoms[0]->dim(0);
  const int classes = static_cast<int>(bottoms[0]->count()) / rows;
  const int top_k = std::max(spec_.top_k, 1);
  auto scores = bottoms[0]->data();
  auto labels = bottoms[1]->data();
  int correct = 0;
  for (int r = 0; r < rows; ++r) {
    const std::size_t base = static_cast<std::size_t>(r) * classes;
    const int label = static_cast<int>(labels[r]);
    // Top-k hit: fewer than k classes score strictly above the label's
    // (ImageNet's standard top-5 metric at k=5).
    int above = 0;
    for (int c = 0; c < classes; ++c) {
      if (scores[base + c] > scores[base + label]) ++above;
    }
    if (above < top_k) ++correct;
  }
  tops[0]->data()[0] = static_cast<float>(correct) / rows;
}

void AccuracyLayer::backward(const std::vector<tensor::Tensor*>& /*tops*/,
                             const std::vector<tensor::Tensor*>& /*bottoms*/,
                             const std::vector<bool>& /*prop_down*/) {
  // Metric layer: no gradient.
}

}  // namespace swcaffe::core
