// Net: a DAG of layers over named blobs, executing forward/backward in spec
// order (which must be topological, as in Caffe prototxts). Multi-consumer
// blobs are handled by accumulation: backward zeroes every diff once and
// layers add their contributions, so residual and inception graphs need no
// Split layers.
#pragma once

#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/layer.h"
#include "core/spec.h"
#include "tensor/tensor.h"

namespace swcaffe::core {

class Net {
 public:
  explicit Net(const NetSpec& spec, std::uint64_t seed = 1);

  Net(const Net&) = delete;
  Net& operator=(const Net&) = delete;

  /// Runs all layers; returns the weighted sum of loss-layer outputs.
  double forward();

  /// Zeroes blob diffs, seeds loss gradients, runs layers in reverse.
  /// Parameter diffs ACCUMULATE (callers zero them via zero_param_diffs()).
  void backward();

  /// forward() + zero_param_diffs() + backward(); returns the loss.
  double forward_backward();

  void set_phase(Phase phase);
  Phase phase() const { return phase_; }

  tensor::Tensor* blob(const std::string& name);
  const tensor::Tensor* blob(const std::string& name) const;
  bool has_blob(const std::string& name) const;

  Layer* layer(const std::string& name);
  const std::vector<std::unique_ptr<Layer>>& layers() const { return layers_; }

  /// All learnable parameter tensors in deterministic order.
  std::vector<tensor::Tensor*> learnable_params();
  std::size_t param_count() const;  ///< total learnable floats

  /// Memory accounting (the net level is where Caffe-style frameworks apply
  /// memory optimizations, paper Sec. II-C): bytes held by activation blobs
  /// and by parameters, data buffers only (diffs double these when
  /// training).
  std::size_t activation_bytes() const;
  std::size_t param_bytes() const { return param_count() * sizeof(float); }

  void zero_param_diffs();

  /// Flattens parameter gradients into `out` / restores them from `in`
  /// (the paper's gradient packing for a single fused all-reduce, Sec. V-A).
  void pack_param_diffs(std::span<float> out) const;
  void unpack_param_diffs(std::span<const float> in);
  void pack_params(std::span<float> out) const;
  void unpack_params(std::span<const float> in);

  /// Copies all parameters from a same-spec net (replica initialization).
  void copy_params_from(const Net& other);

  /// Performance descriptors of every layer (for the timing models).
  std::vector<LayerDesc> describe() const;

  /// Switches convolution layers onto tuned strategy assignments (swtune):
  /// each named conv runs the assigned implicit/explicit path from the next
  /// forward/backward on. Names not present in the net are ignored (a plan
  /// cache may carry more layers than this replica instantiates). Returns
  /// the number of layers switched.
  int apply_conv_plans(
      const std::map<std::string, ConvPlanAssignment>& assignments);

  const std::string& name() const { return spec_.name; }

 private:
  NetSpec spec_;
  Phase phase_ = Phase::kTrain;
  std::map<std::string, std::unique_ptr<tensor::Tensor>> blobs_;
  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<std::vector<tensor::Tensor*>> bottoms_;
  std::vector<std::vector<tensor::Tensor*>> tops_;
  std::vector<std::vector<bool>> prop_down_;
  std::vector<bool> layer_needs_backward_;
};

}  // namespace swcaffe::core
