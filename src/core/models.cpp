#include "core/models.h"

#include <string>

#include "base/log.h"

namespace swcaffe::core {

namespace {

/// Appends conv (+optional bn) + relu with Fig. 8/9-style names.
void add_conv_bn_relu(NetSpec& net, const std::string& name,
                      const std::string& bottom, const std::string& top,
                      int num_output, int kernel, int stride, int pad,
                      bool with_bn) {
  net.layers.push_back(conv_spec(name, bottom, with_bn ? name + "_raw" : top,
                                 num_output, kernel, stride, pad));
  if (with_bn) {
    net.layers.push_back(bn_spec(name + "/bn", name + "_raw", top));
  }
}

}  // namespace

NetSpec alexnet_bn(int batch, int classes, int image, bool with_loss) {
  NetSpec net;
  net.name = "alexnet-bn";
  net.inputs.push_back({"data", {batch, 3, image, image}});
  if (with_loss) net.inputs.push_back({"label", {batch}});

  auto block = [&](const std::string& id, const std::string& bottom,
                   int out, int kernel, int stride, int pad) {
    add_conv_bn_relu(net, id, bottom, id + "_bn", out, kernel, stride, pad,
                     /*with_bn=*/true);
    net.layers.push_back(relu_spec("relu" + id.substr(4), id + "_bn", id + "_out"));
  };
  block("conv1", "data", 96, 11, 4, 0);
  net.layers.push_back(
      pool_spec("pool1", "conv1_out", "pool1", PoolMethod::kMax, 3, 2));
  block("conv2", "pool1", 256, 5, 1, 2);
  net.layers.push_back(
      pool_spec("pool2", "conv2_out", "pool2", PoolMethod::kMax, 3, 2));
  block("conv3", "pool2", 384, 3, 1, 1);
  block("conv4", "conv3_out", 384, 3, 1, 1);
  block("conv5", "conv4_out", 256, 3, 1, 1);
  net.layers.push_back(
      pool_spec("pool5", "conv5_out", "pool5", PoolMethod::kMax, 3, 2));
  net.layers.push_back(ip_spec("fc6", "pool5", "fc6", 4096));
  net.layers.push_back(relu_spec("relu6", "fc6", "fc6_out"));
  net.layers.push_back(dropout_spec("drop6", "fc6_out", "fc6_drop"));
  net.layers.push_back(ip_spec("fc7", "fc6_drop", "fc7", 4096));
  net.layers.push_back(relu_spec("relu7", "fc7", "fc7_out"));
  net.layers.push_back(dropout_spec("drop7", "fc7_out", "fc7_drop"));
  net.layers.push_back(ip_spec("fc8", "fc7_drop", "fc8", classes));
  if (with_loss) {
    net.layers.push_back(softmax_loss_spec("loss", "fc8", "label", "loss"));
  }
  return net;
}

NetSpec alexnet_original(int batch, int classes, int image, bool with_loss) {
  NetSpec net;
  net.name = "alexnet-original";
  net.inputs.push_back({"data", {batch, 3, image, image}});
  if (with_loss) net.inputs.push_back({"label", {batch}});

  auto conv = [&](const std::string& id, const std::string& bottom, int out,
                  int kernel, int stride, int pad, int group) {
    net.layers.push_back(conv_spec(id, bottom, id, out, kernel, stride, pad));
    net.layers.back().group = group;
    net.layers.push_back(relu_spec("relu" + id.substr(4), id, id + "_out"));
    return id + "_out";
  };
  std::string b = conv("conv1", "data", 96, 11, 4, 0, 1);
  net.layers.push_back(lrn_spec("norm1", b, "norm1"));
  net.layers.push_back(
      pool_spec("pool1", "norm1", "pool1", PoolMethod::kMax, 3, 2));
  b = conv("conv2", "pool1", 256, 5, 1, 2, 2);  // historical 2-group split
  net.layers.push_back(lrn_spec("norm2", b, "norm2"));
  net.layers.push_back(
      pool_spec("pool2", "norm2", "pool2", PoolMethod::kMax, 3, 2));
  b = conv("conv3", "pool2", 384, 3, 1, 1, 1);
  b = conv("conv4", b, 384, 3, 1, 1, 2);
  b = conv("conv5", b, 256, 3, 1, 1, 2);
  net.layers.push_back(pool_spec("pool5", b, "pool5", PoolMethod::kMax, 3, 2));
  net.layers.push_back(ip_spec("fc6", "pool5", "fc6", 4096));
  net.layers.push_back(relu_spec("relu6", "fc6", "fc6_out"));
  net.layers.push_back(dropout_spec("drop6", "fc6_out", "fc6_drop"));
  net.layers.push_back(ip_spec("fc7", "fc6_drop", "fc7", 4096));
  net.layers.push_back(relu_spec("relu7", "fc7", "fc7_out"));
  net.layers.push_back(dropout_spec("drop7", "fc7_out", "fc7_drop"));
  net.layers.push_back(ip_spec("fc8", "fc7_drop", "fc8", classes));
  if (with_loss) {
    net.layers.push_back(softmax_loss_spec("loss", "fc8", "label", "loss"));
  }
  return net;
}

NetSpec vgg(int depth, int batch, int classes, int image, bool with_loss) {
  SWC_CHECK_MSG(depth == 16 || depth == 19, "vgg depth must be 16 or 19");
  NetSpec net;
  net.name = "vgg-" + std::to_string(depth);
  net.inputs.push_back({"data", {batch, 3, image, image}});
  if (with_loss) net.inputs.push_back({"label", {batch}});

  const int convs_per_block_16[5] = {2, 2, 3, 3, 3};
  const int convs_per_block_19[5] = {2, 2, 4, 4, 4};
  const int* convs =
      depth == 16 ? convs_per_block_16 : convs_per_block_19;
  const int channels[5] = {64, 128, 256, 512, 512};

  std::string bottom = "data";
  for (int blk = 0; blk < 5; ++blk) {
    for (int i = 0; i < convs[blk]; ++i) {
      const std::string id = "conv" + std::to_string(blk + 1) + "_" +
                             std::to_string(i + 1);
      net.layers.push_back(conv_spec(id, bottom, id, channels[blk], 3, 1, 1));
      const std::string relu_id = "relu" + std::to_string(blk + 1) + "_" +
                                  std::to_string(i + 1);
      net.layers.push_back(relu_spec(relu_id, id, id + "_out"));
      bottom = id + "_out";
    }
    const std::string pool_id = "pool" + std::to_string(blk + 1);
    net.layers.push_back(
        pool_spec(pool_id, bottom, pool_id, PoolMethod::kMax, 2, 2));
    bottom = pool_id;
  }
  net.layers.push_back(ip_spec("fc6", bottom, "fc6", 4096));
  net.layers.push_back(relu_spec("relu6", "fc6", "fc6_out"));
  net.layers.push_back(dropout_spec("drop6", "fc6_out", "fc6_drop"));
  net.layers.push_back(ip_spec("fc7", "fc6_drop", "fc7", 4096));
  net.layers.push_back(relu_spec("relu7", "fc7", "fc7_out"));
  net.layers.push_back(dropout_spec("drop7", "fc7_out", "fc7_drop"));
  net.layers.push_back(ip_spec("fc8", "fc7_drop", "fc8", classes));
  if (with_loss) {
    net.layers.push_back(softmax_loss_spec("loss", "fc8", "label", "loss"));
  }
  return net;
}

NetSpec resnet50(int batch, int classes, int image, bool with_loss) {
  NetSpec net;
  net.name = "resnet-50";
  net.inputs.push_back({"data", {batch, 3, image, image}});
  if (with_loss) net.inputs.push_back({"label", {batch}});

  net.layers.push_back(conv_spec("conv1", "data", "conv1", 64, 7, 2, 3));
  net.layers.push_back(bn_spec("bn_conv1", "conv1", "conv1_bn"));
  net.layers.push_back(relu_spec("conv1_relu", "conv1_bn", "conv1_out"));
  net.layers.push_back(
      pool_spec("pool1", "conv1_out", "pool1", PoolMethod::kMax, 3, 2));

  const int blocks_per_stage[4] = {3, 4, 6, 3};
  const int mid_channels[4] = {64, 128, 256, 512};
  std::string bottom = "pool1";
  for (int stage = 0; stage < 4; ++stage) {
    const int mid = mid_channels[stage];
    const int out = mid * 4;
    for (int blk = 0; blk < blocks_per_stage[stage]; ++blk) {
      const std::string id =
          "res" + std::to_string(stage + 2) + static_cast<char>('a' + blk);
      const int stride = (blk == 0 && stage > 0) ? 2 : 1;

      auto branch = [&](const std::string& suffix, const std::string& in,
                        int nout, int kernel, int s, int pad) -> std::string {
        const std::string cname = id + "_" + suffix;
        net.layers.push_back(conv_spec(cname, in, cname, nout, kernel, s, pad));
        net.layers.back().bias = false;  // BN provides the shift
        net.layers.push_back(bn_spec(cname + "_bn", cname, cname + "_bnout"));
        return cname + "_bnout";
      };

      std::string b = branch("branch2a", bottom, mid, 1, stride, 0);
      net.layers.push_back(relu_spec(id + "_2a_relu", b, b + "_relu"));
      b = branch("branch2b", b + "_relu", mid, 3, 1, 1);
      net.layers.push_back(relu_spec(id + "_2b_relu", b, b + "_relu"));
      b = branch("branch2c", b + "_relu", out, 1, 1, 0);

      std::string shortcut = bottom;
      if (blk == 0) {
        shortcut = branch("branch1", bottom, out, 1, stride, 0);
      }
      net.layers.push_back(eltwise_sum_spec(id, b, shortcut, id + "_sum"));
      net.layers.push_back(relu_spec(id + "_relu", id + "_sum", id + "_out"));
      bottom = id + "_out";
    }
  }
  net.layers.push_back(pool_spec("pool5", bottom, "pool5", PoolMethod::kAve, 7,
                                 1, 0, /*global_pool=*/true));
  net.layers.push_back(ip_spec("fc1000", "pool5", "fc1000", classes));
  if (with_loss) {
    net.layers.push_back(softmax_loss_spec("loss", "fc1000", "label", "loss"));
  }
  return net;
}

NetSpec googlenet(int batch, int classes, int image, bool with_loss) {
  NetSpec net;
  net.name = "googlenet";
  net.inputs.push_back({"data", {batch, 3, image, image}});
  if (with_loss) net.inputs.push_back({"label", {batch}});

  auto conv_relu = [&](const std::string& name, const std::string& bottom,
                       int out, int kernel, int stride, int pad) {
    net.layers.push_back(conv_spec(name, bottom, name, out, kernel, stride, pad));
    net.layers.push_back(relu_spec(name + "_relu", name, name + "_out"));
    return name + "_out";
  };

  std::string b = conv_relu("conv1/7x7_s2", "data", 64, 7, 2, 3);
  net.layers.push_back(
      pool_spec("pool1/3x3_s2", b, "pool1", PoolMethod::kMax, 3, 2));
  net.layers.push_back(lrn_spec("pool1/norm1", "pool1", "pool1_norm"));
  b = conv_relu("conv2/3x3_reduce", "pool1_norm", 64, 1, 1, 0);
  b = conv_relu("conv2/3x3", b, 192, 3, 1, 1);
  net.layers.push_back(lrn_spec("conv2/norm2", b, "conv2_norm"));
  net.layers.push_back(
      pool_spec("pool2/3x3_s2", "conv2_norm", "pool2", PoolMethod::kMax, 3, 2));
  b = "pool2";

  struct InceptionCfg {
    const char* id;
    int c1, c3r, c3, c5r, c5, pp;
  };
  const InceptionCfg cfgs[] = {
      {"3a", 64, 96, 128, 16, 32, 32},   {"3b", 128, 128, 192, 32, 96, 64},
      {"4a", 192, 96, 208, 16, 48, 64},  {"4b", 160, 112, 224, 24, 64, 64},
      {"4c", 128, 128, 256, 24, 64, 64}, {"4d", 112, 144, 288, 32, 64, 64},
      {"4e", 256, 160, 320, 32, 128, 128},
      {"5a", 256, 160, 320, 32, 128, 128},
      {"5b", 384, 192, 384, 48, 128, 128},
  };
  for (const auto& c : cfgs) {
    const std::string p = std::string("inception_") + c.id;
    const std::string b1 = conv_relu(p + "/1x1", b, c.c1, 1, 1, 0);
    std::string b3 = conv_relu(p + "/3x3_reduce", b, c.c3r, 1, 1, 0);
    b3 = conv_relu(p + "/3x3", b3, c.c3, 3, 1, 1);
    std::string b5 = conv_relu(p + "/5x5_reduce", b, c.c5r, 1, 1, 0);
    b5 = conv_relu(p + "/5x5", b5, c.c5, 5, 1, 2);
    net.layers.push_back(
        pool_spec(p + "/pool", b, p + "_pool", PoolMethod::kMax, 3, 1, 1));
    const std::string bp = conv_relu(p + "/pool_proj", p + "_pool", c.pp, 1, 1, 0);
    net.layers.push_back(concat_spec(p + "/output", {b1, b3, b5, bp}, p + "_out"));
    b = p + "_out";
    if (std::string(c.id) == "3b" || std::string(c.id) == "4e") {
      const std::string pool_name =
          std::string("pool") + (std::string(c.id) == "3b" ? "3" : "4") +
          "/3x3_s2";
      net.layers.push_back(
          pool_spec(pool_name, b, pool_name + "_out", PoolMethod::kMax, 3, 2));
      b = pool_name + "_out";
    }
  }
  net.layers.push_back(pool_spec("pool5/7x7_s1", b, "pool5", PoolMethod::kAve,
                                 7, 1, 0, /*global_pool=*/true));
  net.layers.push_back(dropout_spec("pool5/drop", "pool5", "pool5_drop", 0.4f));
  net.layers.push_back(ip_spec("loss3/classifier", "pool5_drop", "fc", classes));
  if (with_loss) {
    net.layers.push_back(softmax_loss_spec("loss", "fc", "label", "loss"));
  }
  return net;
}

}  // namespace swcaffe::core
