// Architecture-neutral layer descriptors.
//
// A LayerDesc captures everything the performance models need about one
// layer at one batch size: kind, shapes, flop counts and byte counts. The
// functional framework (core::Net) produces them from live layers, and the
// model zoo produces them by pure shape inference so that paper-scale
// configurations (batch-128 VGG-16, batch-256 AlexNet) can be timed without
// allocating multi-gigabyte activations. Consumed by swdnn (SW26010 times)
// and perfmodel (GPU/CPU baselines).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace swcaffe::core {

enum class LayerKind {
  kData,
  kConv,
  kInnerProduct,
  kLSTM,  // recurrent layer; GEMM-dominated on SW26010 (paper Sec. IV-A)
  kReLU,
  kSigmoid,
  kTanH,
  kPool,
  kBatchNorm,
  kLRN,
  kDropout,
  kSoftmax,
  kSoftmaxLoss,
  kAccuracy,
  kEltwise,
  kConcat,
  kTransform,  // tensor layout transformation layer (paper Sec. IV-C)
};

const char* layer_kind_name(LayerKind kind);

/// Convolution geometry in the paper's notation (Sec. IV-B): filter
/// (No, Ni, K, K), input image (Ri, Ci, Ni), stride S, zero padding P.
struct ConvGeom {
  int batch = 0;
  int in_c = 0;   ///< Ni
  int out_c = 0;  ///< No
  int in_h = 0;   ///< Ri
  int in_w = 0;   ///< Ci
  int kernel = 0; ///< K
  int stride = 1; ///< S
  int pad = 0;
  /// Channel groups (Caffe semantics: group g's out channels see only group
  /// g's in channels; the original AlexNet used group = 2).
  int group = 1;

  int out_h() const { return (in_h + 2 * pad - kernel) / stride + 1; }
  int out_w() const { return (in_w + 2 * pad - kernel) / stride + 1; }

  /// Multiply-add pairs counted as 2 flops, whole batch.
  double flops_fwd() const {
    return 2.0 * batch * out_c * (in_c / group) * kernel * kernel *
           static_cast<double>(out_h()) * out_w();
  }
  /// Weight-gradient and input-gradient GEMMs have the same flop count as
  /// the forward pass each.
  double flops_bwd_weight() const { return flops_fwd(); }
  double flops_bwd_input() const { return flops_fwd(); }

  std::int64_t input_count() const {
    return static_cast<std::int64_t>(batch) * in_c * in_h * in_w;
  }
  std::int64_t output_count() const {
    return static_cast<std::int64_t>(batch) * out_c * out_h() * out_w();
  }
  std::int64_t weight_count() const {
    return static_cast<std::int64_t>(out_c) * (in_c / group) * kernel *
           kernel;
  }

  /// The geometry of one group in isolation (what each group's kernel sees).
  ConvGeom per_group() const {
    ConvGeom g = *this;
    g.in_c = in_c / group;
    g.out_c = out_c / group;
    g.group = 1;
    return g;
  }
};

/// Per-layer strategy assignment a tuner hands to a live network: which
/// convolution path each pass runs. The functional ConvLayer keeps one
/// backward flag, so a mixed dW/dX tuning maps to implicit_backward only
/// when both backward passes choose the implicit kernel.
struct ConvPlanAssignment {
  bool implicit_forward = false;
  bool implicit_backward = false;
};

/// GEMM dims of an inner-product layer: out(m x n) = in(m x k) * W^T.
struct FcGeom {
  std::int64_t m = 0;  ///< batch
  std::int64_t n = 0;  ///< output features
  std::int64_t k = 0;  ///< input features
  double flops_fwd() const { return 2.0 * m * n * k; }
};

struct PoolGeom {
  int batch = 0, channels = 0, in_h = 0, in_w = 0;
  int kernel = 2, stride = 2, pad = 0;
  bool global = false;  ///< pool the full feature map (ResNet/GoogleNet head)

  /// Caffe's ceil-mode pooled size.
  static int pooled(int in, int kernel, int stride, int pad) {
    int out = (in + 2 * pad - kernel + stride - 1) / stride + 1;
    if (pad > 0 && (out - 1) * stride >= in + pad) --out;  // clip last window
    return out;
  }
  int out_h() const { return global ? 1 : pooled(in_h, kernel, stride, pad); }
  int out_w() const { return global ? 1 : pooled(in_w, kernel, stride, pad); }
};

struct LayerDesc {
  std::string name;
  LayerKind kind = LayerKind::kReLU;

  ConvGeom conv;  ///< valid when kind == kConv
  FcGeom fc;      ///< valid when kind == kInnerProduct or kLSTM (per step)
  PoolGeom pool;  ///< valid when kind == kPool
  int steps = 1;  ///< sequential repetitions (LSTM time steps)

  /// Element counts (floats) of the main input/output/parameter blobs; used
  /// for bandwidth-bound ops and communication sizing.
  std::int64_t input_count = 0;
  std::int64_t output_count = 0;
  std::int64_t param_count = 0;

  std::int64_t param_bytes() const { return param_count * 4; }
};

/// Sum of parameter bytes across a net description (the all-reduce message
/// size of data-parallel SGD; paper Sec. VI-C quotes 232.6 MB for AlexNet
/// and 97.7 MB for ResNet-50).
std::int64_t total_param_bytes(const std::vector<LayerDesc>& descs);

}  // namespace swcaffe::core
