// BatchNorm (with learnable scale/shift) and cross-channel LRN.
#include <algorithm>
#include <cmath>

#include "base/log.h"
#include "core/layers.h"
#include "tensor/filler.h"

namespace swcaffe::core {

// --- BatchNorm ----------------------------------------------------------------

void BatchNormLayer::setup(const std::vector<tensor::Tensor*>& bottoms,
                           const std::vector<tensor::Tensor*>& tops,
                           base::Rng& /*rng*/) {
  SWC_CHECK_EQ(bottoms.size(), 1u);
  const tensor::Tensor& in = *bottoms[0];
  SWC_CHECK_EQ(in.num_axes(), 4);
  channels_ = in.channels();
  tops[0]->reshape_like(in);

  if (params_.empty()) {
    auto gamma = std::make_shared<tensor::Tensor>(std::vector<int>{channels_});
    std::fill(gamma->data().begin(), gamma->data().end(), 1.0f);
    params_.push_back(std::move(gamma));
    auto beta = std::make_shared<tensor::Tensor>(std::vector<int>{channels_});
    params_.push_back(std::move(beta));
  }
  running_mean_.assign(channels_, 0.0f);
  running_var_.assign(channels_, 1.0f);
  mean_.assign(channels_, 0.0f);
  var_.assign(channels_, 0.0f);
  x_hat_.assign(in.count(), 0.0f);

  desc_ = LayerDesc{};
  desc_.name = spec_.name;
  desc_.kind = LayerKind::kBatchNorm;
  desc_.input_count = static_cast<std::int64_t>(in.count());
  desc_.output_count = desc_.input_count;
  desc_.param_count = 2 * channels_;
}

void BatchNormLayer::forward(const std::vector<tensor::Tensor*>& bottoms,
                             const std::vector<tensor::Tensor*>& tops) {
  const tensor::Tensor& in = *bottoms[0];
  const int n = in.num(), h = in.height(), w = in.width();
  const std::size_t plane = static_cast<std::size_t>(h) * w;
  const std::size_t img = static_cast<std::size_t>(channels_) * plane;
  const double m = static_cast<double>(n) * plane;
  const float* x = in.data_ptr();
  float* y = tops[0]->mutable_data_ptr();
  const float* gamma = params_[0]->data_ptr();
  const float* beta = params_[1]->data_ptr();

  if (phase_ == Phase::kTrain) {
    for (int c = 0; c < channels_; ++c) {
      double sum = 0.0, sq = 0.0;
      for (int b = 0; b < n; ++b) {
        const float* p = x + b * img + c * plane;
        for (std::size_t i = 0; i < plane; ++i) {
          sum += p[i];
          sq += static_cast<double>(p[i]) * p[i];
        }
      }
      const double mu = sum / m;
      mean_[c] = static_cast<float>(mu);
      var_[c] = static_cast<float>(std::max(sq / m - mu * mu, 0.0));
      running_mean_[c] = spec_.bn_momentum * running_mean_[c] +
                         (1.0f - spec_.bn_momentum) * mean_[c];
      running_var_[c] = spec_.bn_momentum * running_var_[c] +
                        (1.0f - spec_.bn_momentum) * var_[c];
    }
  } else {
    mean_ = running_mean_;
    var_ = running_var_;
  }

  x_hat_.resize(in.count());
  for (int c = 0; c < channels_; ++c) {
    const float inv_std = 1.0f / std::sqrt(var_[c] + spec_.bn_eps);
    for (int b = 0; b < n; ++b) {
      const std::size_t off = b * img + c * plane;
      for (std::size_t i = 0; i < plane; ++i) {
        const float xh = (x[off + i] - mean_[c]) * inv_std;
        x_hat_[off + i] = xh;
        y[off + i] = gamma[c] * xh + beta[c];
      }
    }
  }
}

void BatchNormLayer::backward(const std::vector<tensor::Tensor*>& tops,
                              const std::vector<tensor::Tensor*>& bottoms,
                              const std::vector<bool>& prop_down) {
  const tensor::Tensor& in = *bottoms[0];
  const int n = in.num(), h = in.height(), w = in.width();
  const std::size_t plane = static_cast<std::size_t>(h) * w;
  const std::size_t img = static_cast<std::size_t>(channels_) * plane;
  const double m = static_cast<double>(n) * plane;
  auto td = tops[0]->diff();
  auto gamma_diff = params_[0]->diff();
  auto beta_diff = params_[1]->diff();
  const float* gamma = params_[0]->data_ptr();

  for (int c = 0; c < channels_; ++c) {
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (int b = 0; b < n; ++b) {
      const std::size_t off = b * img + c * plane;
      for (std::size_t i = 0; i < plane; ++i) {
        sum_dy += td[off + i];
        sum_dy_xhat += static_cast<double>(td[off + i]) * x_hat_[off + i];
      }
    }
    gamma_diff[c] += static_cast<float>(sum_dy_xhat);
    beta_diff[c] += static_cast<float>(sum_dy);

    if (!prop_down.empty() && prop_down[0]) {
      auto bd = bottoms[0]->diff();
      const float inv_std = 1.0f / std::sqrt(var_[c] + spec_.bn_eps);
      const float scale = gamma[c] * inv_std / static_cast<float>(m);
      for (int b = 0; b < n; ++b) {
        const std::size_t off = b * img + c * plane;
        for (std::size_t i = 0; i < plane; ++i) {
          const double dx = m * td[off + i] - sum_dy -
                            x_hat_[off + i] * sum_dy_xhat;
          bd[off + i] += scale * static_cast<float>(dx);
        }
      }
    }
  }
}

// --- LRN (across channels, Caffe semantics) ------------------------------------

void LrnLayer::setup(const std::vector<tensor::Tensor*>& bottoms,
                     const std::vector<tensor::Tensor*>& tops,
                     base::Rng& /*rng*/) {
  SWC_CHECK_EQ(bottoms.size(), 1u);
  SWC_CHECK_EQ(bottoms[0]->num_axes(), 4);
  SWC_CHECK_EQ(spec_.lrn_size % 2, 1);
  tops[0]->reshape_like(*bottoms[0]);
  scale_.assign(bottoms[0]->count(), 0.0f);

  desc_ = LayerDesc{};
  desc_.name = spec_.name;
  desc_.kind = LayerKind::kLRN;
  desc_.input_count = static_cast<std::int64_t>(bottoms[0]->count());
  desc_.output_count = desc_.input_count;
}

void LrnLayer::forward(const std::vector<tensor::Tensor*>& bottoms,
                       const std::vector<tensor::Tensor*>& tops) {
  const tensor::Tensor& in = *bottoms[0];
  const int n = in.num(), c = in.channels(), h = in.height(), w = in.width();
  const int half = spec_.lrn_size / 2;
  const float alpha_n = spec_.lrn_alpha / spec_.lrn_size;
  const float* x = in.data_ptr();
  float* y = tops[0]->mutable_data_ptr();
  scale_.resize(in.count());
  for (int b = 0; b < n; ++b) {
    for (int ci = 0; ci < c; ++ci) {
      for (int yy = 0; yy < h; ++yy) {
        for (int xx = 0; xx < w; ++xx) {
          float acc = 0.0f;
          const int lo = std::max(0, ci - half);
          const int hi = std::min(c - 1, ci + half);
          for (int cj = lo; cj <= hi; ++cj) {
            const float v = x[in.offset(b, cj, yy, xx)];
            acc += v * v;
          }
          const std::size_t o = in.offset(b, ci, yy, xx);
          scale_[o] = 1.0f + alpha_n * acc;
          y[o] = x[o] * std::pow(scale_[o], -spec_.lrn_beta);
        }
      }
    }
  }
}

void LrnLayer::backward(const std::vector<tensor::Tensor*>& tops,
                        const std::vector<tensor::Tensor*>& bottoms,
                        const std::vector<bool>& prop_down) {
  if (prop_down.empty() || !prop_down[0]) return;
  const tensor::Tensor& in = *bottoms[0];
  const int n = in.num(), c = in.channels(), h = in.height(), w = in.width();
  const int half = spec_.lrn_size / 2;
  const float alpha_n = spec_.lrn_alpha / spec_.lrn_size;
  const float* x = in.data_ptr();
  auto y = tops[0]->data();
  auto td = tops[0]->diff();
  auto bd = bottoms[0]->diff();
  for (int b = 0; b < n; ++b) {
    for (int ci = 0; ci < c; ++ci) {
      for (int yy = 0; yy < h; ++yy) {
        for (int xx = 0; xx < w; ++xx) {
          const std::size_t oi = in.offset(b, ci, yy, xx);
          // Direct term.
          float grad = td[oi] * std::pow(scale_[oi], -spec_.lrn_beta);
          // Cross terms: every output j whose window contains i.
          const int lo = std::max(0, ci - half);
          const int hi = std::min(c - 1, ci + half);
          float cross = 0.0f;
          for (int cj = lo; cj <= hi; ++cj) {
            const std::size_t oj = in.offset(b, cj, yy, xx);
            cross += td[oj] * y[oj] / scale_[oj];
          }
          grad -= 2.0f * alpha_n * spec_.lrn_beta * x[oi] * cross;
          bd[oi] += grad;
        }
      }
    }
  }
}

}  // namespace swcaffe::core
