// Eltwise sum, channel Concat, TensorTransform and SyntheticData layers,
// plus the layer factory.
#include <algorithm>
#include <cmath>

#include "base/log.h"
#include "core/layers.h"
#include "tensor/layout.h"

namespace swcaffe::core {

// --- Eltwise (sum) -----------------------------------------------------------

void EltwiseLayer::setup(const std::vector<tensor::Tensor*>& bottoms,
                         const std::vector<tensor::Tensor*>& tops,
                         base::Rng& /*rng*/) {
  SWC_CHECK_GE(bottoms.size(), 2u);
  for (std::size_t i = 1; i < bottoms.size(); ++i) {
    SWC_CHECK_EQ(bottoms[i]->count(), bottoms[0]->count());
  }
  if (!spec_.eltwise_coeffs.empty()) {
    SWC_CHECK_EQ(spec_.eltwise_coeffs.size(), bottoms.size());
    SWC_CHECK_MSG(!spec_.eltwise_max,
                  "eltwise '" << spec_.name << "': max takes no coefficients");
  }
  tops[0]->reshape_like(*bottoms[0]);
  if (spec_.eltwise_max) max_src_.assign(bottoms[0]->count(), 0);
  desc_ = LayerDesc{};
  desc_.name = spec_.name;
  desc_.kind = LayerKind::kEltwise;
  desc_.input_count = static_cast<std::int64_t>(bottoms[0]->count()) *
                      static_cast<std::int64_t>(bottoms.size());
  desc_.output_count = static_cast<std::int64_t>(tops[0]->count());
}

void EltwiseLayer::forward(const std::vector<tensor::Tensor*>& bottoms,
                           const std::vector<tensor::Tensor*>& tops) {
  auto out = tops[0]->data();
  if (spec_.eltwise_max) {
    auto first = bottoms[0]->data();
    std::copy(first.begin(), first.end(), out.begin());
    std::fill(max_src_.begin(), max_src_.end(), 0);
    for (std::size_t b = 1; b < bottoms.size(); ++b) {
      auto in = bottoms[b]->data();
      for (std::size_t i = 0; i < out.size(); ++i) {
        if (in[i] > out[i]) {
          out[i] = in[i];
          max_src_[i] = static_cast<int>(b);
        }
      }
    }
    return;
  }
  auto coeff = [&](std::size_t b) {
    return spec_.eltwise_coeffs.empty() ? 1.0f : spec_.eltwise_coeffs[b];
  };
  std::fill(out.begin(), out.end(), 0.0f);
  for (std::size_t b = 0; b < bottoms.size(); ++b) {
    auto in = bottoms[b]->data();
    const float c = coeff(b);
    for (std::size_t i = 0; i < out.size(); ++i) out[i] += c * in[i];
  }
}

void EltwiseLayer::backward(const std::vector<tensor::Tensor*>& tops,
                            const std::vector<tensor::Tensor*>& bottoms,
                            const std::vector<bool>& prop_down) {
  auto td = tops[0]->diff();
  if (spec_.eltwise_max) {
    // Winner-take-all gradient routing, like max pooling.
    for (std::size_t i = 0; i < td.size(); ++i) {
      const std::size_t b = static_cast<std::size_t>(max_src_[i]);
      if (b < prop_down.size() && !prop_down[b]) continue;
      bottoms[b]->diff()[i] += td[i];
    }
    return;
  }
  for (std::size_t b = 0; b < bottoms.size(); ++b) {
    if (b < prop_down.size() && !prop_down[b]) continue;
    const float c =
        spec_.eltwise_coeffs.empty() ? 1.0f : spec_.eltwise_coeffs[b];
    auto bd = bottoms[b]->diff();
    for (std::size_t i = 0; i < td.size(); ++i) bd[i] += c * td[i];
  }
}

// --- Concat (channel axis) ----------------------------------------------------

void ConcatLayer::setup(const std::vector<tensor::Tensor*>& bottoms,
                        const std::vector<tensor::Tensor*>& tops,
                        base::Rng& /*rng*/) {
  SWC_CHECK_GE(bottoms.size(), 1u);
  int channels = 0;
  for (const auto* b : bottoms) {
    SWC_CHECK_EQ(b->num_axes(), 4);
    SWC_CHECK_EQ(b->num(), bottoms[0]->num());
    SWC_CHECK_EQ(b->height(), bottoms[0]->height());
    SWC_CHECK_EQ(b->width(), bottoms[0]->width());
    channels += b->channels();
  }
  tops[0]->reshape({bottoms[0]->num(), channels, bottoms[0]->height(),
                    bottoms[0]->width()});
  desc_ = LayerDesc{};
  desc_.name = spec_.name;
  desc_.kind = LayerKind::kConcat;
  desc_.input_count = static_cast<std::int64_t>(tops[0]->count());
  desc_.output_count = desc_.input_count;
}

void ConcatLayer::forward(const std::vector<tensor::Tensor*>& bottoms,
                          const std::vector<tensor::Tensor*>& tops) {
  tensor::Tensor& out = *tops[0];
  const int n = out.num();
  float* y = out.mutable_data_ptr();
  for (int b = 0; b < n; ++b) {
    std::size_t dst =
        static_cast<std::size_t>(b) * out.channels() * out.height() * out.width();
    for (const auto* bot : bottoms) {
      const std::size_t chunk = bot->count() / n;
      std::copy_n(bot->data_ptr() + b * chunk, chunk, y + dst);
      dst += chunk;
    }
  }
}

void ConcatLayer::backward(const std::vector<tensor::Tensor*>& tops,
                           const std::vector<tensor::Tensor*>& bottoms,
                           const std::vector<bool>& prop_down) {
  const tensor::Tensor& out = *tops[0];
  const int n = out.num();
  auto td = out.diff();
  for (int b = 0; b < n; ++b) {
    std::size_t src =
        static_cast<std::size_t>(b) * out.channels() * out.height() * out.width();
    for (std::size_t bi = 0; bi < bottoms.size(); ++bi) {
      const std::size_t chunk = bottoms[bi]->count() / n;
      if (bi >= prop_down.size() || prop_down[bi]) {
        auto bd = bottoms[bi]->diff();
        for (std::size_t i = 0; i < chunk; ++i) bd[b * chunk + i] += td[src + i];
      }
      src += chunk;
    }
  }
}

// --- TensorTransform -----------------------------------------------------------

void TransformLayer::setup(const std::vector<tensor::Tensor*>& bottoms,
                           const std::vector<tensor::Tensor*>& tops,
                           base::Rng& /*rng*/) {
  SWC_CHECK_EQ(bottoms.size(), 1u);
  SWC_CHECK_EQ(bottoms[0]->num_axes(), 4);
  const auto& s = bottoms[0]->shape();
  if (spec_.stride == 0) {
    tops[0]->reshape({s[2], s[3], s[1], s[0]});  // BNRC -> RCNB
  } else {
    tops[0]->reshape({s[3], s[2], s[0], s[1]});  // RCNB -> BNRC
  }
  desc_ = LayerDesc{};
  desc_.name = spec_.name;
  desc_.kind = LayerKind::kTransform;
  desc_.input_count = static_cast<std::int64_t>(bottoms[0]->count());
  desc_.output_count = desc_.input_count;
  desc_.conv.in_w = s[3];
}

void TransformLayer::forward(const std::vector<tensor::Tensor*>& bottoms,
                             const std::vector<tensor::Tensor*>& tops) {
  if (spec_.stride == 0) {
    tensor::bnrc_to_rcnb(*bottoms[0], *tops[0]);
  } else {
    tensor::rcnb_to_bnrc(*bottoms[0], *tops[0]);
  }
}

void TransformLayer::backward(const std::vector<tensor::Tensor*>& tops,
                              const std::vector<tensor::Tensor*>& bottoms,
                              const std::vector<bool>& prop_down) {
  if (prop_down.empty() || !prop_down[0]) return;
  // The inverse permutation routes the gradient back.
  tensor::Tensor grad_in(tops[0]->shape());
  std::copy(tops[0]->diff().begin(), tops[0]->diff().end(),
            grad_in.data().begin());
  tensor::Tensor grad_out;
  if (spec_.stride == 0) {
    tensor::rcnb_to_bnrc(grad_in, grad_out);
  } else {
    tensor::bnrc_to_rcnb(grad_in, grad_out);
  }
  auto bd = bottoms[0]->diff();
  auto g = grad_out.data();
  for (std::size_t i = 0; i < bd.size(); ++i) bd[i] += g[i];
}

// --- SyntheticData ---------------------------------------------------------------

void SyntheticDataLayer::setup(const std::vector<tensor::Tensor*>& bottoms,
                               const std::vector<tensor::Tensor*>& tops,
                               base::Rng& /*rng*/) {
  SWC_CHECK_EQ(bottoms.size(), 0u);
  SWC_CHECK_EQ(tops.size(), 2u);
  SWC_CHECK_EQ(spec_.data_shape.size(), 4u);
  SWC_CHECK_GT(spec_.num_classes, 0);
  tops[0]->reshape(spec_.data_shape);
  tops[1]->reshape({spec_.data_shape[0]});
  desc_ = LayerDesc{};
  desc_.name = spec_.name;
  desc_.kind = LayerKind::kData;
  desc_.output_count = static_cast<std::int64_t>(tops[0]->count());
}

void SyntheticDataLayer::forward(const std::vector<tensor::Tensor*>& /*bottoms*/,
                                 const std::vector<tensor::Tensor*>& tops) {
  // Label-conditioned gaussians: class k has mean sin-pattern so that the
  // task is learnable (used by the convergence examples/tests).
  tensor::Tensor& data = *tops[0];
  tensor::Tensor& label = *tops[1];
  const int batch = data.num();
  const std::size_t img = data.count() / batch;
  for (int b = 0; b < batch; ++b) {
    const int cls =
        static_cast<int>(rng_.uniform_int(0, spec_.num_classes - 1));
    label.data()[b] = static_cast<float>(cls);
    float* px = data.mutable_data_ptr() + b * img;
    for (std::size_t i = 0; i < img; ++i) {
      const float mean =
          0.6f * std::sin(0.37f * static_cast<float>(i + 1) * (cls + 1));
      px[i] = mean + rng_.gaussian(0.0f, 0.25f);
    }
  }
}

void SyntheticDataLayer::backward(const std::vector<tensor::Tensor*>& /*tops*/,
                                  const std::vector<tensor::Tensor*>& /*bottoms*/,
                                  const std::vector<bool>& /*prop_down*/) {}

// --- Factory ----------------------------------------------------------------------

std::unique_ptr<Layer> create_layer(const LayerSpec& spec) {
  switch (spec.kind) {
    case LayerKind::kConv: return std::make_unique<ConvLayer>(spec);
    case LayerKind::kInnerProduct: return std::make_unique<InnerProductLayer>(spec);
    case LayerKind::kLSTM: return std::make_unique<LstmLayer>(spec);
    case LayerKind::kReLU: return std::make_unique<ReluLayer>(spec);
    case LayerKind::kSigmoid: return std::make_unique<SigmoidLayer>(spec);
    case LayerKind::kTanH: return std::make_unique<TanhLayer>(spec);
    case LayerKind::kPool: return std::make_unique<PoolLayer>(spec);
    case LayerKind::kBatchNorm: return std::make_unique<BatchNormLayer>(spec);
    case LayerKind::kLRN: return std::make_unique<LrnLayer>(spec);
    case LayerKind::kDropout: return std::make_unique<DropoutLayer>(spec);
    case LayerKind::kSoftmax: return std::make_unique<SoftmaxLayer>(spec);
    case LayerKind::kSoftmaxLoss: return std::make_unique<SoftmaxLossLayer>(spec);
    case LayerKind::kAccuracy: return std::make_unique<AccuracyLayer>(spec);
    case LayerKind::kEltwise: return std::make_unique<EltwiseLayer>(spec);
    case LayerKind::kConcat: return std::make_unique<ConcatLayer>(spec);
    case LayerKind::kTransform: return std::make_unique<TransformLayer>(spec);
    case LayerKind::kData: return std::make_unique<SyntheticDataLayer>(spec);
  }
  SWC_CHECK_MSG(false, "unknown layer kind");
  return nullptr;
}

}  // namespace swcaffe::core
