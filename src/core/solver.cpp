#include "core/solver.h"

#include <cmath>
#include <cstdint>
#include <fstream>

#include "base/log.h"

namespace swcaffe::core {

SgdSolver::SgdSolver(Net& net, const SolverSpec& spec)
    : net_(&net), spec_(spec) {
  for (auto* p : net_->learnable_params()) {
    history_.emplace_back(p->count(), 0.0f);
  }
}

float SgdSolver::current_lr() const {
  switch (spec_.policy) {
    case LrPolicy::kFixed:
      return spec_.base_lr;
    case LrPolicy::kStep:
      return spec_.base_lr *
             std::pow(spec_.gamma, static_cast<float>(iter_ / spec_.step_size));
    case LrPolicy::kPoly:
      return spec_.base_lr *
             std::pow(1.0f - static_cast<float>(iter_) / spec_.max_iter,
                      spec_.power);
    case LrPolicy::kInv:
      return spec_.base_lr *
             std::pow(1.0f + spec_.gamma * iter_, -spec_.power);
  }
  return spec_.base_lr;
}

void SgdSolver::apply_update() {
  const float lr = current_lr();
  auto params = net_->learnable_params();
  SWC_CHECK_EQ(params.size(), history_.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    tensor::Tensor& p = *params[i];
    auto data = p.data();
    auto diff = p.diff();
    auto& hist = history_[i];
    for (std::size_t j = 0; j < data.size(); ++j) {
      const float g = diff[j] + spec_.weight_decay * data[j];
      if (spec_.type == SolverType::kSgd) {
        hist[j] = spec_.momentum * hist[j] + lr * g;
        data[j] -= hist[j];
      } else {
        // Nesterov (Caffe semantics): look-ahead correction on the velocity.
        const float v_prev = hist[j];
        hist[j] = spec_.momentum * hist[j] + lr * g;
        data[j] -= (1.0f + spec_.momentum) * hist[j] -
                   spec_.momentum * v_prev;
      }
    }
  }
  ++iter_;
}

void SgdSolver::snapshot(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  SWC_CHECK_MSG(os.is_open(), "cannot open snapshot file " << path);
  const std::int64_t iter = iter_;
  os.write(reinterpret_cast<const char*>(&iter), sizeof(iter));
  std::vector<float> params(net_->param_count());
  net_->pack_params(params);
  const std::uint64_t n = params.size();
  os.write(reinterpret_cast<const char*>(&n), sizeof(n));
  os.write(reinterpret_cast<const char*>(params.data()),
           static_cast<std::streamsize>(n * sizeof(float)));
  for (const auto& h : history_) {
    os.write(reinterpret_cast<const char*>(h.data()),
             static_cast<std::streamsize>(h.size() * sizeof(float)));
  }
  SWC_CHECK_MSG(os.good(), "snapshot write failed: " << path);
}

void SgdSolver::restore(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  SWC_CHECK_MSG(is.is_open(), "cannot open snapshot file " << path);
  std::int64_t iter = 0;
  is.read(reinterpret_cast<char*>(&iter), sizeof(iter));
  iter_ = static_cast<int>(iter);
  std::uint64_t n = 0;
  is.read(reinterpret_cast<char*>(&n), sizeof(n));
  SWC_CHECK_EQ(n, net_->param_count());
  std::vector<float> params(n);
  is.read(reinterpret_cast<char*>(params.data()),
          static_cast<std::streamsize>(n * sizeof(float)));
  net_->unpack_params(params);
  for (auto& h : history_) {
    is.read(reinterpret_cast<char*>(h.data()),
            static_cast<std::streamsize>(h.size() * sizeof(float)));
  }
  SWC_CHECK_MSG(is.good(), "snapshot read failed: " << path);
}

void SgdSolver::set_state(int iter,
                          const std::vector<std::vector<float>>& history) {
  SWC_CHECK_GE(iter, 0);
  SWC_CHECK_EQ(history.size(), history_.size());
  for (std::size_t i = 0; i < history.size(); ++i) {
    SWC_CHECK_EQ(history[i].size(), history_[i].size());
  }
  iter_ = iter;
  history_ = history;
}

double SgdSolver::step() {
  const double loss = compute_gradients();
  apply_update();
  return loss;
}

}  // namespace swcaffe::core
