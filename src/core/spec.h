// Declarative network specifications (the in-C++ equivalent of Caffe's
// prototxt): one LayerSpec per layer, bottoms/tops by blob name, plus net
// inputs for deploy-style graphs whose data is fed by the caller.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/layer_desc.h"
#include "tensor/filler.h"

namespace swcaffe::core {

/// Convolution implementation strategy (paper Sec. IV-B / VI-A).
enum class ConvStrategy {
  kAuto,      ///< pick per direction from the cost model (swCaffe default)
  kExplicit,  ///< im2col + GEMM always
  kImplicit,  ///< direct blocked kernel always (throws if unsupported)
};

enum class PoolMethod { kMax, kAve };

enum class Phase { kTrain, kTest };

struct LayerSpec {
  std::string name;
  LayerKind kind = LayerKind::kReLU;
  std::vector<std::string> bottoms;
  std::vector<std::string> tops;

  // conv / inner product
  int num_output = 0;
  int kernel = 0;
  int stride = 1;
  int pad = 0;
  int group = 1;
  bool bias = true;
  ConvStrategy strategy = ConvStrategy::kAuto;

  // pooling
  PoolMethod pool_method = PoolMethod::kMax;
  int pool_kernel = 2;
  int pool_stride = 2;
  int pool_pad = 0;
  bool global_pool = false;

  // dropout
  float dropout_ratio = 0.5f;

  // batch norm
  float bn_momentum = 0.9f;
  float bn_eps = 1e-5f;

  // local response normalization
  int lrn_size = 5;
  float lrn_alpha = 1e-4f;
  float lrn_beta = 0.75f;

  // eltwise
  bool eltwise_max = false;          ///< max instead of (weighted) sum
  std::vector<float> eltwise_coeffs; ///< per-bottom sum coefficients (empty = 1s)

  // accuracy
  int top_k = 1;  ///< count a hit if the label is within the top-k scores

  // synthetic data layer
  std::vector<int> data_shape;  ///< (B, C, H, W)
  int num_classes = 0;

  tensor::FillerSpec weight_filler = tensor::FillerSpec::msra();
  tensor::FillerSpec bias_filler = tensor::FillerSpec::constant(0.0f);
};

struct NetSpec {
  std::string name;
  /// Externally fed blobs: (name, shape). Filled by the caller before
  /// forward() (training harnesses, tests).
  std::vector<std::pair<std::string, std::vector<int>>> inputs;
  std::vector<LayerSpec> layers;  ///< must be in topological order
};

// --- Spec builder helpers (used by the model zoo and tests) -----------------
LayerSpec conv_spec(const std::string& name, const std::string& bottom,
                    const std::string& top, int num_output, int kernel,
                    int stride = 1, int pad = 0);
LayerSpec ip_spec(const std::string& name, const std::string& bottom,
                  const std::string& top, int num_output);
LayerSpec lstm_spec(const std::string& name, const std::string& bottom,
                    const std::string& top, int hidden);
LayerSpec relu_spec(const std::string& name, const std::string& bottom,
                    const std::string& top);
LayerSpec sigmoid_spec(const std::string& name, const std::string& bottom,
                       const std::string& top);
LayerSpec tanh_spec(const std::string& name, const std::string& bottom,
                    const std::string& top);
LayerSpec pool_spec(const std::string& name, const std::string& bottom,
                    const std::string& top, PoolMethod method, int kernel,
                    int stride, int pad = 0, bool global_pool = false);
LayerSpec bn_spec(const std::string& name, const std::string& bottom,
                  const std::string& top);
LayerSpec lrn_spec(const std::string& name, const std::string& bottom,
                   const std::string& top, int size = 5);
LayerSpec dropout_spec(const std::string& name, const std::string& bottom,
                       const std::string& top, float ratio = 0.5f);
LayerSpec softmax_loss_spec(const std::string& name, const std::string& bottom,
                            const std::string& label, const std::string& top);
LayerSpec accuracy_spec(const std::string& name, const std::string& bottom,
                        const std::string& label, const std::string& top);
LayerSpec eltwise_sum_spec(const std::string& name, const std::string& a,
                           const std::string& b, const std::string& top);
LayerSpec concat_spec(const std::string& name,
                      const std::vector<std::string>& bottoms,
                      const std::string& top);
LayerSpec data_spec(const std::string& name, const std::string& data_top,
                    const std::string& label_top, std::vector<int> shape,
                    int num_classes);

}  // namespace swcaffe::core
