// Layer interface in the Caffe mould: setup reshapes tops from bottoms and
// allocates parameters; forward/backward implement the math. Backward
// ACCUMULATES into bottom diffs (the net zeroes diffs once per iteration),
// which makes multi-consumer blobs (residual connections, inception fan-out)
// correct without Caffe's explicit Split layers.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "base/rng.h"
#include "core/layer_desc.h"
#include "core/spec.h"
#include "tensor/tensor.h"

namespace swcaffe::core {

class Layer {
 public:
  explicit Layer(const LayerSpec& spec) : spec_(spec) {}
  virtual ~Layer() = default;

  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  /// Shapes tops, allocates parameters (filled from `rng`), and fills the
  /// layer descriptor used by the performance models.
  virtual void setup(const std::vector<tensor::Tensor*>& bottoms,
                     const std::vector<tensor::Tensor*>& tops,
                     base::Rng& rng) = 0;

  virtual void forward(const std::vector<tensor::Tensor*>& bottoms,
                       const std::vector<tensor::Tensor*>& tops) = 0;

  /// `prop_down[i]` says whether bottom i needs a gradient. Implementations
  /// must ADD their contribution to bottom diffs.
  virtual void backward(const std::vector<tensor::Tensor*>& tops,
                        const std::vector<tensor::Tensor*>& bottoms,
                        const std::vector<bool>& prop_down) = 0;

  /// Loss weight contribution of this layer's top(0) (1.0 for loss layers).
  virtual double loss_weight() const { return 0.0; }

  const std::string& name() const { return spec_.name; }
  LayerKind kind() const { return spec_.kind; }
  const LayerSpec& spec() const { return spec_; }
  void set_phase(Phase phase) { phase_ = phase; }
  Phase phase() const { return phase_; }

  std::vector<std::shared_ptr<tensor::Tensor>>& params() { return params_; }
  const std::vector<std::shared_ptr<tensor::Tensor>>& params() const {
    return params_;
  }

  /// Performance descriptor (valid after setup).
  const LayerDesc& desc() const { return desc_; }

 protected:
  LayerSpec spec_;
  Phase phase_ = Phase::kTrain;
  std::vector<std::shared_ptr<tensor::Tensor>> params_;
  LayerDesc desc_;
};

/// Factory: instantiates the concrete layer class for a spec.
std::unique_ptr<Layer> create_layer(const LayerSpec& spec);

}  // namespace swcaffe::core
