#include <algorithm>
#include <vector>

#include "base/log.h"
#include "core/layers.h"
#include "swdnn/conv_func.h"
#include "swdnn/conv_plan.h"
#include "tensor/filler.h"

namespace swcaffe::core {

void ConvLayer::setup(const std::vector<tensor::Tensor*>& bottoms,
                      const std::vector<tensor::Tensor*>& tops,
                      base::Rng& rng) {
  SWC_CHECK_EQ(bottoms.size(), 1u);
  SWC_CHECK_EQ(tops.size(), 1u);
  const tensor::Tensor& in = *bottoms[0];
  SWC_CHECK_EQ(in.num_axes(), 4);
  geom_ = ConvGeom{};
  geom_.batch = in.num();
  geom_.in_c = in.channels();
  geom_.in_h = in.height();
  geom_.in_w = in.width();
  geom_.out_c = spec_.num_output;
  geom_.kernel = spec_.kernel;
  geom_.stride = spec_.stride;
  geom_.pad = spec_.pad;
  geom_.group = spec_.group;
  SWC_CHECK_GT(geom_.group, 0);
  SWC_CHECK_MSG(geom_.in_c % geom_.group == 0 &&
                    geom_.out_c % geom_.group == 0,
                "conv '" << spec_.name << "': channels not divisible by group "
                         << geom_.group);
  SWC_CHECK_GT(geom_.out_h(), 0);
  SWC_CHECK_GT(geom_.out_w(), 0);

  tops[0]->reshape({geom_.batch, geom_.out_c, geom_.out_h(), geom_.out_w()});

  if (params_.empty()) {
    auto weight = std::make_shared<tensor::Tensor>(std::vector<int>{
        geom_.out_c, geom_.in_c / geom_.group, geom_.kernel, geom_.kernel});
    tensor::fill(*weight, spec_.weight_filler, rng);
    params_.push_back(std::move(weight));
    if (spec_.bias) {
      auto bias = std::make_shared<tensor::Tensor>(std::vector<int>{geom_.out_c});
      tensor::fill(*bias, spec_.bias_filler, rng);
      params_.push_back(std::move(bias));
    }
  }

  // Plan selection (paper Sec. VI-A): the auto-tuner evaluates both
  // strategies with the SW26010 cost model and locks the winner.
  switch (spec_.strategy) {
    case ConvStrategy::kExplicit:
      implicit_fwd_ = implicit_bwd_ = false;
      break;
    case ConvStrategy::kImplicit:
      SWC_CHECK_MSG(dnn::implicit_forward_supported(geom_.per_group()),
                    "implicit conv unsupported for " << spec_.name
                        << " (in_c=" << geom_.in_c << ")");
      implicit_fwd_ = true;
      implicit_bwd_ = dnn::implicit_backward_supported(geom_.per_group());
      break;
    case ConvStrategy::kAuto: {
      const hw::CostModel cost;
      const dnn::ConvEstimate est = dnn::estimate_conv(cost, geom_);
      implicit_fwd_ = est.forward.implicit_wins();
      implicit_bwd_ = est.backward_input.implicit_wins() &&
                      est.backward_weight.implicit_wins();
      break;
    }
  }

  desc_ = LayerDesc{};
  desc_.name = spec_.name;
  desc_.kind = LayerKind::kConv;
  desc_.conv = geom_;
  desc_.input_count = geom_.input_count();
  desc_.output_count = geom_.output_count();
  desc_.param_count = geom_.weight_count() + (spec_.bias ? geom_.out_c : 0);
}

void ConvLayer::set_plan(const ConvPlanAssignment& assignment) {
  SWC_CHECK_GT(geom_.batch, 0);  // setup() must have run
  implicit_fwd_ = assignment.implicit_forward &&
                  dnn::implicit_forward_supported(geom_.per_group());
  implicit_bwd_ = assignment.implicit_backward &&
                  dnn::implicit_backward_supported(geom_.per_group());
}

void ConvLayer::forward(const std::vector<tensor::Tensor*>& bottoms,
                        const std::vector<tensor::Tensor*>& tops) {
  const float* weight = params_[0]->data_ptr();
  const float* bias = spec_.bias ? params_[1]->data_ptr() : nullptr;
  if (implicit_fwd_) {
    dnn::conv_forward_implicit(geom_, bottoms[0]->data_ptr(), weight, bias,
                               tops[0]->mutable_data_ptr());
  } else {
    col_buf_.resize(static_cast<std::size_t>(geom_.in_c) * geom_.kernel *
                    geom_.kernel * geom_.out_h() * geom_.out_w());
    dnn::conv_forward_explicit(geom_, bottoms[0]->data_ptr(), weight, bias,
                               tops[0]->mutable_data_ptr(), col_buf_.data());
  }
}

void ConvLayer::backward(const std::vector<tensor::Tensor*>& tops,
                         const std::vector<tensor::Tensor*>& bottoms,
                         const std::vector<bool>& prop_down) {
  const float* top_diff = tops[0]->diff().data();
  col_buf_.resize(static_cast<std::size_t>(geom_.in_c) * geom_.kernel *
                  geom_.kernel * geom_.out_h() * geom_.out_w());
  // Parameter gradients accumulate across the iteration (zeroed by solver).
  dnn::conv_backward_weight(
      geom_, bottoms[0]->data_ptr(), top_diff,
      params_[0]->diff().data(),
      spec_.bias ? params_[1]->diff().data() : nullptr, col_buf_.data());
  if (!prop_down.empty() && prop_down[0]) {
    // conv_backward_input overwrites, so route through scratch and add
    // (bottom blobs can have several consumers).
    scratch_.resize(bottoms[0]->count());
    dnn::conv_backward_input(geom_, params_[0]->data_ptr(), top_diff,
                             scratch_.data(), col_buf_.data());
    auto bd = bottoms[0]->diff();
    for (std::size_t i = 0; i < scratch_.size(); ++i) bd[i] += scratch_[i];
  }
}

}  // namespace swcaffe::core
