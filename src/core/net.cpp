#include "core/net.h"

#include <algorithm>

#include "base/log.h"
#include "core/layers.h"

namespace swcaffe::core {

Net::Net(const NetSpec& spec, std::uint64_t seed) : spec_(spec) {
  base::Rng rng(seed);
  std::map<std::string, bool> blob_needs_grad;

  auto get_blob = [&](const std::string& name) -> tensor::Tensor* {
    auto it = blobs_.find(name);
    if (it == blobs_.end()) {
      it = blobs_.emplace(name, std::make_unique<tensor::Tensor>()).first;
    }
    return it->second.get();
  };

  for (const auto& [name, shape] : spec_.inputs) {
    get_blob(name)->reshape(shape);
    // Label inputs carry no gradient; data-like inputs do (Caffe's
    // force_backward semantics — gradient checks and adversarial uses read
    // d(loss)/d(input)).
    blob_needs_grad[name] = name.find("label") == std::string::npos;
  }

  for (const auto& ls : spec_.layers) {
    auto layer = create_layer(ls);
    std::vector<tensor::Tensor*> bottoms, tops;
    for (const auto& b : ls.bottoms) {
      SWC_CHECK_MSG(blobs_.count(b) > 0,
                    "net '" << spec_.name << "': layer '" << ls.name
                            << "' uses undefined bottom blob '" << b << "'");
      bottoms.push_back(get_blob(b));
    }
    for (const auto& t : ls.tops) {
      SWC_CHECK_MSG(blobs_.count(t) == 0,
                    "net '" << spec_.name << "': top blob '" << t
                            << "' defined twice (in-place not supported)");
      tops.push_back(get_blob(t));
    }
    layer->setup(bottoms, tops, rng);

    std::vector<bool> prop(bottoms.size(), false);
    bool any_bottom_grad = false;
    for (std::size_t i = 0; i < ls.bottoms.size(); ++i) {
      prop[i] = blob_needs_grad[ls.bottoms[i]];
      any_bottom_grad = any_bottom_grad || prop[i];
    }
    const bool produces_grad = any_bottom_grad || !layer->params().empty();
    for (const auto& t : ls.tops) blob_needs_grad[t] = produces_grad;

    layer_needs_backward_.push_back(produces_grad);
    prop_down_.push_back(std::move(prop));
    bottoms_.push_back(std::move(bottoms));
    tops_.push_back(std::move(tops));
    layers_.push_back(std::move(layer));
  }
}

double Net::forward() {
  double loss = 0.0;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->forward(bottoms_[i], tops_[i]);
    if (layers_[i]->loss_weight() > 0.0) {
      loss += layers_[i]->loss_weight() * tops_[i][0]->data()[0];
    }
  }
  return loss;
}

void Net::backward() {
  for (auto& [name, blob] : blobs_) {
    (void)name;
    blob->zero_diff();
  }
  // Seed loss layers with unit gradient on their scalar output.
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (layers_[i]->loss_weight() > 0.0) {
      tops_[i][0]->diff()[0] = static_cast<float>(layers_[i]->loss_weight());
    }
  }
  for (std::size_t i = layers_.size(); i-- > 0;) {
    if (!layer_needs_backward_[i]) continue;
    layers_[i]->backward(tops_[i], bottoms_[i], prop_down_[i]);
  }
}

double Net::forward_backward() {
  const double loss = forward();
  zero_param_diffs();
  backward();
  return loss;
}

void Net::set_phase(Phase phase) {
  phase_ = phase;
  for (auto& l : layers_) l->set_phase(phase);
}

tensor::Tensor* Net::blob(const std::string& name) {
  auto it = blobs_.find(name);
  SWC_CHECK_MSG(it != blobs_.end(), "unknown blob '" << name << "'");
  return it->second.get();
}

const tensor::Tensor* Net::blob(const std::string& name) const {
  auto it = blobs_.find(name);
  SWC_CHECK_MSG(it != blobs_.end(), "unknown blob '" << name << "'");
  return it->second.get();
}

bool Net::has_blob(const std::string& name) const {
  return blobs_.count(name) > 0;
}

Layer* Net::layer(const std::string& name) {
  for (auto& l : layers_) {
    if (l->name() == name) return l.get();
  }
  SWC_CHECK_MSG(false, "unknown layer '" << name << "'");
  return nullptr;
}

std::vector<tensor::Tensor*> Net::learnable_params() {
  std::vector<tensor::Tensor*> out;
  for (auto& l : layers_) {
    for (auto& p : l->params()) out.push_back(p.get());
  }
  return out;
}

std::size_t Net::activation_bytes() const {
  std::size_t bytes = 0;
  for (const auto& [name, blob] : blobs_) {
    (void)name;
    bytes += blob->count() * sizeof(float);
  }
  return bytes;
}

std::size_t Net::param_count() const {
  std::size_t n = 0;
  for (const auto& l : layers_) {
    for (const auto& p : l->params()) n += p->count();
  }
  return n;
}

void Net::zero_param_diffs() {
  for (auto& l : layers_) {
    for (auto& p : l->params()) p->zero_diff();
  }
}

void Net::pack_param_diffs(std::span<float> out) const {
  SWC_CHECK_EQ(out.size(), param_count());
  std::size_t off = 0;
  for (const auto& l : layers_) {
    for (const auto& p : l->params()) {
      auto d = p->diff();
      std::copy(d.begin(), d.end(), out.begin() + off);
      off += d.size();
    }
  }
}

void Net::unpack_param_diffs(std::span<const float> in) {
  SWC_CHECK_EQ(in.size(), param_count());
  std::size_t off = 0;
  for (auto& l : layers_) {
    for (auto& p : l->params()) {
      auto d = p->diff();
      std::copy(in.begin() + off, in.begin() + off + d.size(), d.begin());
      off += d.size();
    }
  }
}

void Net::pack_params(std::span<float> out) const {
  SWC_CHECK_EQ(out.size(), param_count());
  std::size_t off = 0;
  for (const auto& l : layers_) {
    for (const auto& p : l->params()) {
      auto d = p->data();
      std::copy(d.begin(), d.end(), out.begin() + off);
      off += d.size();
    }
  }
}

void Net::unpack_params(std::span<const float> in) {
  SWC_CHECK_EQ(in.size(), param_count());
  std::size_t off = 0;
  for (auto& l : layers_) {
    for (auto& p : l->params()) {
      auto d = p->data();
      std::copy(in.begin() + off, in.begin() + off + d.size(), d.begin());
      off += d.size();
    }
  }
}

void Net::copy_params_from(const Net& other) {
  SWC_CHECK_EQ(other.layers_.size(), layers_.size());
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    auto& mine = layers_[i]->params();
    const auto& theirs = other.layers_[i]->params();
    SWC_CHECK_EQ(mine.size(), theirs.size());
    for (std::size_t p = 0; p < mine.size(); ++p) {
      mine[p]->copy_from(*theirs[p]);
    }
  }
}

std::vector<LayerDesc> Net::describe() const {
  std::vector<LayerDesc> out;
  out.reserve(layers_.size());
  for (const auto& l : layers_) out.push_back(l->desc());
  return out;
}

int Net::apply_conv_plans(
    const std::map<std::string, ConvPlanAssignment>& assignments) {
  int applied = 0;
  for (const auto& l : layers_) {
    auto* conv = dynamic_cast<ConvLayer*>(l.get());
    if (!conv) continue;
    auto it = assignments.find(l->name());
    if (it == assignments.end()) continue;
    conv->set_plan(it->second);
    ++applied;
  }
  return applied;
}

}  // namespace swcaffe::core
