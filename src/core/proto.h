// Prototxt-style text format for nets and solvers.
//
// swCaffe "maintains the same interfaces as Caffe" (paper Sec. I); this
// module reads a Caffe-flavoured prototxt dialect (and writes a canonical
// form of it), so models can be declared as text instead of C++:
//
//   name: "mynet"
//   input: "data"  input_dim: 32 input_dim: 3 input_dim: 24 input_dim: 24
//   input: "label" input_dim: 32
//   layer {
//     name: "conv1"  type: "Convolution"  bottom: "data"  top: "conv1"
//     convolution_param { num_output: 16 kernel_size: 3 pad: 1 engine: AUTO }
//   }
//   layer { name: "relu1" type: "ReLU" bottom: "conv1" top: "relu1" }
//
// Nested *_param blocks are accepted anywhere and flattened (the keys are
// unambiguous across layer types in this dialect). `engine` selects the
// swCaffe convolution strategy: AUTO | EXPLICIT | IMPLICIT.
#pragma once

#include <string>

#include "core/solver.h"
#include "core/spec.h"

namespace swcaffe::core {

/// Parses a net description; throws base::CheckError with line information
/// on malformed input.
NetSpec parse_net_prototxt(const std::string& text);
NetSpec load_net_prototxt(const std::string& path);

/// Emits the canonical prototxt for a spec (round-trips through the parser).
std::string net_spec_to_prototxt(const NetSpec& spec);

/// Solver prototxt: base_lr, momentum, weight_decay, lr_policy
/// ("fixed"|"step"|"poly"|"inv"), gamma, stepsize, power, max_iter, type
/// ("SGD"|"Nesterov").
SolverSpec parse_solver_prototxt(const std::string& text);
SolverSpec load_solver_prototxt(const std::string& path);

}  // namespace swcaffe::core
