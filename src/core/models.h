// Model zoo: the five networks of the paper's evaluation (Sec. VI), as
// NetSpecs parameterized by batch size, class count and input resolution.
// Paper-scale resolutions would need multi-GB activations, so the timing
// benches use describe_net_spec() — pure shape inference over a spec — while
// the functional tests/examples instantiate the same specs at small
// resolution through core::Net.
#pragma once

#include <string>
#include <vector>

#include "core/spec.h"

namespace swcaffe::core {

/// AlexNet with the paper's refinement: LRN replaced by BatchNorm
/// (Sec. VI-A). Layer names match Fig. 8. `with_loss` appends
/// SoftmaxWithLoss fed from a "label" input.
NetSpec alexnet_bn(int batch, int classes = 1000, int image = 227,
                   bool with_loss = true);

/// The original Krizhevsky AlexNet: LRN after conv1/conv2 and 2-group
/// convolutions for conv2/4/5 (the historical dual-GPU split). Kept for
/// comparison with the paper's BN refinement.
NetSpec alexnet_original(int batch, int classes = 1000, int image = 227,
                         bool with_loss = true);

/// VGG-16 / VGG-19 (Simonyan & Zisserman); layer names match Fig. 9 /
/// Table II (conv1_1 ... conv5_3/conv5_4).
NetSpec vgg(int depth, int batch, int classes = 1000, int image = 224,
            bool with_loss = true);

/// ResNet-50 (He et al.): bottleneck blocks, BN after every conv,
/// projection shortcuts on stage entry.
NetSpec resnet50(int batch, int classes = 1000, int image = 224,
                 bool with_loss = true);

/// GoogleNet (Inception v1) without the auxiliary classifiers.
NetSpec googlenet(int batch, int classes = 1000, int image = 224,
                  bool with_loss = true);

/// Pure shape inference: produces the same LayerDescs Net::describe() would,
/// without allocating any tensor data. Throws on shape errors.
std::vector<LayerDesc> describe_net_spec(const NetSpec& spec);

}  // namespace swcaffe::core
