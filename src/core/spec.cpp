#include "core/spec.h"

namespace swcaffe::core {

LayerSpec conv_spec(const std::string& name, const std::string& bottom,
                    const std::string& top, int num_output, int kernel,
                    int stride, int pad) {
  LayerSpec s;
  s.name = name;
  s.kind = LayerKind::kConv;
  s.bottoms = {bottom};
  s.tops = {top};
  s.num_output = num_output;
  s.kernel = kernel;
  s.stride = stride;
  s.pad = pad;
  return s;
}

LayerSpec ip_spec(const std::string& name, const std::string& bottom,
                  const std::string& top, int num_output) {
  LayerSpec s;
  s.name = name;
  s.kind = LayerKind::kInnerProduct;
  s.bottoms = {bottom};
  s.tops = {top};
  s.num_output = num_output;
  return s;
}

LayerSpec lstm_spec(const std::string& name, const std::string& bottom,
                    const std::string& top, int hidden) {
  LayerSpec s;
  s.name = name;
  s.kind = LayerKind::kLSTM;
  s.bottoms = {bottom};
  s.tops = {top};
  s.num_output = hidden;
  return s;
}

LayerSpec relu_spec(const std::string& name, const std::string& bottom,
                    const std::string& top) {
  LayerSpec s;
  s.name = name;
  s.kind = LayerKind::kReLU;
  s.bottoms = {bottom};
  s.tops = {top};
  return s;
}

LayerSpec sigmoid_spec(const std::string& name, const std::string& bottom,
                       const std::string& top) {
  LayerSpec s;
  s.name = name;
  s.kind = LayerKind::kSigmoid;
  s.bottoms = {bottom};
  s.tops = {top};
  return s;
}

LayerSpec tanh_spec(const std::string& name, const std::string& bottom,
                    const std::string& top) {
  LayerSpec s;
  s.name = name;
  s.kind = LayerKind::kTanH;
  s.bottoms = {bottom};
  s.tops = {top};
  return s;
}

LayerSpec pool_spec(const std::string& name, const std::string& bottom,
                    const std::string& top, PoolMethod method, int kernel,
                    int stride, int pad, bool global_pool) {
  LayerSpec s;
  s.name = name;
  s.kind = LayerKind::kPool;
  s.bottoms = {bottom};
  s.tops = {top};
  s.pool_method = method;
  s.pool_kernel = kernel;
  s.pool_stride = stride;
  s.pool_pad = pad;
  s.global_pool = global_pool;
  return s;
}

LayerSpec bn_spec(const std::string& name, const std::string& bottom,
                  const std::string& top) {
  LayerSpec s;
  s.name = name;
  s.kind = LayerKind::kBatchNorm;
  s.bottoms = {bottom};
  s.tops = {top};
  return s;
}

LayerSpec lrn_spec(const std::string& name, const std::string& bottom,
                   const std::string& top, int size) {
  LayerSpec s;
  s.name = name;
  s.kind = LayerKind::kLRN;
  s.bottoms = {bottom};
  s.tops = {top};
  s.lrn_size = size;
  return s;
}

LayerSpec dropout_spec(const std::string& name, const std::string& bottom,
                       const std::string& top, float ratio) {
  LayerSpec s;
  s.name = name;
  s.kind = LayerKind::kDropout;
  s.bottoms = {bottom};
  s.tops = {top};
  s.dropout_ratio = ratio;
  return s;
}

LayerSpec softmax_loss_spec(const std::string& name, const std::string& bottom,
                            const std::string& label, const std::string& top) {
  LayerSpec s;
  s.name = name;
  s.kind = LayerKind::kSoftmaxLoss;
  s.bottoms = {bottom, label};
  s.tops = {top};
  return s;
}

LayerSpec accuracy_spec(const std::string& name, const std::string& bottom,
                        const std::string& label, const std::string& top) {
  LayerSpec s;
  s.name = name;
  s.kind = LayerKind::kAccuracy;
  s.bottoms = {bottom, label};
  s.tops = {top};
  return s;
}

LayerSpec eltwise_sum_spec(const std::string& name, const std::string& a,
                           const std::string& b, const std::string& top) {
  LayerSpec s;
  s.name = name;
  s.kind = LayerKind::kEltwise;
  s.bottoms = {a, b};
  s.tops = {top};
  return s;
}

LayerSpec concat_spec(const std::string& name,
                      const std::vector<std::string>& bottoms,
                      const std::string& top) {
  LayerSpec s;
  s.name = name;
  s.kind = LayerKind::kConcat;
  s.bottoms = bottoms;
  s.tops = {top};
  return s;
}

LayerSpec data_spec(const std::string& name, const std::string& data_top,
                    const std::string& label_top, std::vector<int> shape,
                    int num_classes) {
  LayerSpec s;
  s.name = name;
  s.kind = LayerKind::kData;
  s.tops = {data_top, label_top};
  s.data_shape = std::move(shape);
  s.num_classes = num_classes;
  return s;
}

const char* layer_kind_name(LayerKind kind) {
  switch (kind) {
    case LayerKind::kData: return "Data";
    case LayerKind::kConv: return "Convolution";
    case LayerKind::kInnerProduct: return "InnerProduct";
    case LayerKind::kLSTM: return "LSTM";
    case LayerKind::kReLU: return "ReLU";
    case LayerKind::kSigmoid: return "Sigmoid";
    case LayerKind::kTanH: return "TanH";
    case LayerKind::kPool: return "Pooling";
    case LayerKind::kBatchNorm: return "BatchNorm";
    case LayerKind::kLRN: return "LRN";
    case LayerKind::kDropout: return "Dropout";
    case LayerKind::kSoftmax: return "Softmax";
    case LayerKind::kSoftmaxLoss: return "SoftmaxWithLoss";
    case LayerKind::kAccuracy: return "Accuracy";
    case LayerKind::kEltwise: return "Eltwise";
    case LayerKind::kConcat: return "Concat";
    case LayerKind::kTransform: return "TensorTransform";
  }
  return "?";
}

std::int64_t total_param_bytes(const std::vector<LayerDesc>& descs) {
  std::int64_t total = 0;
  for (const auto& d : descs) total += d.param_bytes();
  return total;
}

}  // namespace swcaffe::core
