// Stochastic gradient descent solver (Caffe SGD semantics: momentum,
// weight decay, learning-rate policies). The gradient-computation and
// parameter-update halves are separable so the distributed trainer can
// all-reduce gradients between them (paper Algorithm 1, line 9/10).
#pragma once

#include <string>
#include <vector>

#include "core/net.h"

namespace swcaffe::core {

enum class LrPolicy { kFixed, kStep, kPoly, kInv };

enum class SolverType {
  kSgd,       ///< classic momentum SGD (the paper's solver)
  kNesterov,  ///< Nesterov accelerated gradient (Caffe semantics)
};

struct SolverSpec {
  SolverType type = SolverType::kSgd;
  float base_lr = 0.01f;
  float momentum = 0.9f;
  float weight_decay = 0.0f;
  LrPolicy policy = LrPolicy::kFixed;
  float gamma = 0.1f;     ///< step decay factor / inv decay rate
  int step_size = 100000; ///< iterations per step decay
  float power = 1.0f;     ///< poly/inv decay exponent
  int max_iter = 10000;   ///< poly horizon
};

class SgdSolver {
 public:
  SgdSolver(Net& net, const SolverSpec& spec);

  /// One full iteration: forward, backward, update. Returns the loss.
  double step();

  /// Gradient half only (distributed callers all-reduce diffs after this).
  double compute_gradients() { return net_->forward_backward(); }

  /// Update half: v = momentum*v + lr*(diff + wd*w); w -= v (or the
  /// Nesterov variant). Advances iter.
  void apply_update();

  float current_lr() const;
  int iter() const { return iter_; }

  /// Snapshot everything needed to resume bit-exactly: net parameters,
  /// momentum history and the iteration counter.
  void snapshot(const std::string& path) const;
  void restore(const std::string& path);

  /// Momentum-state access for external serializers (swfault checkpoints).
  const std::vector<std::vector<float>>& history() const { return history_; }
  /// Restores the iteration counter and momentum buffers; shapes must match
  /// this solver's net.
  void set_state(int iter, const std::vector<std::vector<float>>& history);

 private:
  Net* net_;
  SolverSpec spec_;
  int iter_ = 0;
  std::vector<std::vector<float>> history_;  ///< momentum buffer per param
};

}  // namespace swcaffe::core
