#include "base/log.h"
#include "core/layers.h"
#include "swgemm/reference.h"
#include "tensor/filler.h"

namespace swcaffe::core {

void InnerProductLayer::setup(const std::vector<tensor::Tensor*>& bottoms,
                              const std::vector<tensor::Tensor*>& tops,
                              base::Rng& rng) {
  SWC_CHECK_EQ(bottoms.size(), 1u);
  SWC_CHECK_EQ(tops.size(), 1u);
  const tensor::Tensor& in = *bottoms[0];
  m_ = in.dim(0);
  k_ = static_cast<int>(in.count() / m_);
  n_ = spec_.num_output;
  SWC_CHECK_GT(n_, 0);
  tops[0]->reshape({m_, n_});

  if (params_.empty()) {
    auto weight = std::make_shared<tensor::Tensor>(std::vector<int>{n_, k_});
    tensor::fill(*weight, spec_.weight_filler, rng);
    params_.push_back(std::move(weight));
    if (spec_.bias) {
      auto bias = std::make_shared<tensor::Tensor>(std::vector<int>{n_});
      tensor::fill(*bias, spec_.bias_filler, rng);
      params_.push_back(std::move(bias));
    }
  }

  desc_ = LayerDesc{};
  desc_.name = spec_.name;
  desc_.kind = LayerKind::kInnerProduct;
  desc_.fc = FcGeom{m_, n_, k_};
  desc_.input_count = in.count();
  desc_.output_count = tops[0]->count();
  desc_.param_count =
      static_cast<std::int64_t>(n_) * k_ + (spec_.bias ? n_ : 0);
}

void InnerProductLayer::forward(const std::vector<tensor::Tensor*>& bottoms,
                                const std::vector<tensor::Tensor*>& tops) {
  // top (m x n) = bottom (m x k) * W^T (k x n)
  gemm::sgemm(false, true, m_, n_, k_, 1.0f, bottoms[0]->data_ptr(),
              params_[0]->data_ptr(), 0.0f, tops[0]->mutable_data_ptr());
  if (spec_.bias) {
    const float* bias = params_[1]->data_ptr();
    float* out = tops[0]->mutable_data_ptr();
    for (int i = 0; i < m_; ++i) {
      for (int j = 0; j < n_; ++j) out[static_cast<std::size_t>(i) * n_ + j] += bias[j];
    }
  }
}

void InnerProductLayer::backward(const std::vector<tensor::Tensor*>& tops,
                                 const std::vector<tensor::Tensor*>& bottoms,
                                 const std::vector<bool>& prop_down) {
  const float* top_diff = tops[0]->diff().data();
  // dW (n x k) += top_diff^T (n x m) * bottom (m x k)
  gemm::sgemm(true, false, n_, k_, m_, 1.0f, top_diff, bottoms[0]->data_ptr(),
              1.0f, params_[0]->diff().data());
  if (spec_.bias) {
    float* bias_diff = params_[1]->diff().data();
    for (int i = 0; i < m_; ++i) {
      for (int j = 0; j < n_; ++j) {
        bias_diff[j] += top_diff[static_cast<std::size_t>(i) * n_ + j];
      }
    }
  }
  if (!prop_down.empty() && prop_down[0]) {
    // dBottom (m x k) += top_diff (m x n) * W (n x k)
    gemm::sgemm(false, false, m_, k_, n_, 1.0f, top_diff,
                params_[0]->data_ptr(), 1.0f, bottoms[0]->diff().data());
  }
}

}  // namespace swcaffe::core
