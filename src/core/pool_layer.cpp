// Max / average pooling with Caffe's ceil-mode output sizing.
#include <algorithm>
#include <cmath>
#include <limits>

#include "base/log.h"
#include "core/layers.h"

namespace swcaffe::core {

void PoolLayer::setup(const std::vector<tensor::Tensor*>& bottoms,
                      const std::vector<tensor::Tensor*>& tops,
                      base::Rng& /*rng*/) {
  SWC_CHECK_EQ(bottoms.size(), 1u);
  const tensor::Tensor& in = *bottoms[0];
  SWC_CHECK_EQ(in.num_axes(), 4);
  geom_ = PoolGeom{};
  geom_.batch = in.num();
  geom_.channels = in.channels();
  geom_.in_h = in.height();
  geom_.in_w = in.width();
  geom_.global = spec_.global_pool;
  if (geom_.global) {
    geom_.kernel = in.height();
    geom_.stride = 1;
    geom_.pad = 0;
  } else {
    geom_.kernel = spec_.pool_kernel;
    geom_.stride = spec_.pool_stride;
    geom_.pad = spec_.pool_pad;
  }
  tops[0]->reshape({geom_.batch, geom_.channels, geom_.out_h(), geom_.out_w()});
  max_idx_.assign(tops[0]->count(), -1);

  desc_ = LayerDesc{};
  desc_.name = spec_.name;
  desc_.kind = LayerKind::kPool;
  desc_.pool = geom_;
  desc_.input_count = static_cast<std::int64_t>(in.count());
  desc_.output_count = static_cast<std::int64_t>(tops[0]->count());
}

void PoolLayer::forward(const std::vector<tensor::Tensor*>& bottoms,
                        const std::vector<tensor::Tensor*>& tops) {
  const tensor::Tensor& in = *bottoms[0];
  tensor::Tensor& out = *tops[0];
  const int oh = out.height(), ow = out.width();
  const float* x = in.data_ptr();
  float* y = out.mutable_data_ptr();
  const bool is_max = spec_.pool_method == PoolMethod::kMax;
  max_idx_.resize(out.count());
  std::size_t oi = 0;
  for (int b = 0; b < geom_.batch; ++b) {
    for (int c = 0; c < geom_.channels; ++c) {
      const float* plane =
          x + (static_cast<std::size_t>(b) * geom_.channels + c) * geom_.in_h *
                  geom_.in_w;
      for (int py = 0; py < oh; ++py) {
        for (int px = 0; px < ow; ++px, ++oi) {
          const int y0 = std::max(py * geom_.stride - geom_.pad, 0);
          const int x0 = std::max(px * geom_.stride - geom_.pad, 0);
          const int y1 =
              std::min(py * geom_.stride - geom_.pad + geom_.kernel, geom_.in_h);
          const int x1 =
              std::min(px * geom_.stride - geom_.pad + geom_.kernel, geom_.in_w);
          if (is_max) {
            float best = -std::numeric_limits<float>::infinity();
            int best_idx = -1;
            for (int yy = y0; yy < y1; ++yy) {
              for (int xx = x0; xx < x1; ++xx) {
                const int idx = yy * geom_.in_w + xx;
                if (plane[idx] > best) {
                  best = plane[idx];
                  best_idx = idx;
                }
              }
            }
            y[oi] = best;
            max_idx_[oi] = best_idx;
          } else {
            float acc = 0.0f;
            for (int yy = y0; yy < y1; ++yy) {
              for (int xx = x0; xx < x1; ++xx) acc += plane[yy * geom_.in_w + xx];
            }
            y[oi] = acc / ((y1 - y0) * (x1 - x0));
          }
        }
      }
    }
  }
}

void PoolLayer::backward(const std::vector<tensor::Tensor*>& tops,
                         const std::vector<tensor::Tensor*>& bottoms,
                         const std::vector<bool>& prop_down) {
  if (prop_down.empty() || !prop_down[0]) return;
  const tensor::Tensor& out = *tops[0];
  auto td = out.diff();
  auto bd = bottoms[0]->diff();
  const int oh = out.height(), ow = out.width();
  const bool is_max = spec_.pool_method == PoolMethod::kMax;
  std::size_t oi = 0;
  for (int b = 0; b < geom_.batch; ++b) {
    for (int c = 0; c < geom_.channels; ++c) {
      const std::size_t plane_off =
          (static_cast<std::size_t>(b) * geom_.channels + c) * geom_.in_h *
          geom_.in_w;
      for (int py = 0; py < oh; ++py) {
        for (int px = 0; px < ow; ++px, ++oi) {
          if (is_max) {
            if (max_idx_[oi] >= 0) bd[plane_off + max_idx_[oi]] += td[oi];
          } else {
            const int y0 = std::max(py * geom_.stride - geom_.pad, 0);
            const int x0 = std::max(px * geom_.stride - geom_.pad, 0);
            const int y1 = std::min(
                py * geom_.stride - geom_.pad + geom_.kernel, geom_.in_h);
            const int x1 = std::min(
                px * geom_.stride - geom_.pad + geom_.kernel, geom_.in_w);
            const float g = td[oi] / ((y1 - y0) * (x1 - x0));
            for (int yy = y0; yy < y1; ++yy) {
              for (int xx = x0; xx < x1; ++xx) {
                bd[plane_off + yy * geom_.in_w + xx] += g;
              }
            }
          }
        }
      }
    }
  }
}

}  // namespace swcaffe::core
