// Shape inference over NetSpecs: produces LayerDescs identical to what
// Net::describe() yields, without allocating activations — this is what lets
// the benches time batch-128 VGG-16 on a laptop-scale host.
#include <map>
#include <numeric>

#include "base/log.h"
#include "core/models.h"

namespace swcaffe::core {

namespace {

std::int64_t count_of(const std::vector<int>& shape) {
  std::int64_t n = 1;
  for (int d : shape) n *= d;
  return n;
}

}  // namespace

std::vector<LayerDesc> describe_net_spec(const NetSpec& spec) {
  std::map<std::string, std::vector<int>> shapes;
  for (const auto& [name, shape] : spec.inputs) shapes[name] = shape;

  std::vector<LayerDesc> out;
  out.reserve(spec.layers.size());
  for (const auto& ls : spec.layers) {
    for (const auto& b : ls.bottoms) {
      SWC_CHECK_MSG(shapes.count(b) > 0, "describe: undefined blob '"
                                             << b << "' for layer '" << ls.name
                                             << "'");
    }
    LayerDesc d;
    d.name = ls.name;
    d.kind = ls.kind;
    std::vector<int> top_shape;
    switch (ls.kind) {
      case LayerKind::kData: {
        SWC_CHECK_EQ(ls.data_shape.size(), 4u);
        shapes[ls.tops[0]] = ls.data_shape;
        if (ls.tops.size() > 1) shapes[ls.tops[1]] = {ls.data_shape[0]};
        d.output_count = count_of(ls.data_shape);
        out.push_back(d);
        continue;
      }
      case LayerKind::kConv: {
        const auto& in = shapes[ls.bottoms[0]];
        SWC_CHECK_EQ(in.size(), 4u);
        ConvGeom g;
        g.batch = in[0];
        g.in_c = in[1];
        g.in_h = in[2];
        g.in_w = in[3];
        g.out_c = ls.num_output;
        g.kernel = ls.kernel;
        g.stride = ls.stride;
        g.pad = ls.pad;
        g.group = ls.group;
        SWC_CHECK_GT(g.out_h(), 0);
        d.conv = g;
        d.input_count = g.input_count();
        d.output_count = g.output_count();
        d.param_count = g.weight_count() + (ls.bias ? g.out_c : 0);
        top_shape = {g.batch, g.out_c, g.out_h(), g.out_w()};
        break;
      }
      case LayerKind::kInnerProduct: {
        const auto& in = shapes[ls.bottoms[0]];
        const std::int64_t m = in[0];
        const std::int64_t k = count_of(in) / m;
        d.fc = FcGeom{m, ls.num_output, k};
        d.input_count = count_of(in);
        d.output_count = m * ls.num_output;
        d.param_count = static_cast<std::int64_t>(ls.num_output) * k +
                        (ls.bias ? ls.num_output : 0);
        top_shape = {static_cast<int>(m), ls.num_output};
        break;
      }
      case LayerKind::kLSTM: {
        const auto& in = shapes[ls.bottoms[0]];
        SWC_CHECK_EQ(in.size(), 3u);  // (T, B, I)
        const int h = ls.num_output;
        d.fc = FcGeom{in[1], 4 * h, static_cast<std::int64_t>(in[2]) + h};
        d.steps = in[0];
        d.input_count = count_of(in);
        d.output_count = static_cast<std::int64_t>(in[0]) * in[1] * h;
        d.param_count = static_cast<std::int64_t>(4) * h * (in[2] + h) +
                        (ls.bias ? 4 * h : 0);
        top_shape = {in[0], in[1], h};
        break;
      }
      case LayerKind::kPool: {
        const auto& in = shapes[ls.bottoms[0]];
        SWC_CHECK_EQ(in.size(), 4u);
        PoolGeom g;
        g.batch = in[0];
        g.channels = in[1];
        g.in_h = in[2];
        g.in_w = in[3];
        g.global = ls.global_pool;
        g.kernel = ls.global_pool ? in[2] : ls.pool_kernel;
        g.stride = ls.global_pool ? 1 : ls.pool_stride;
        g.pad = ls.global_pool ? 0 : ls.pool_pad;
        d.pool = g;
        d.input_count = count_of(in);
        d.output_count =
            static_cast<std::int64_t>(g.batch) * g.channels * g.out_h() *
            g.out_w();
        top_shape = {g.batch, g.channels, g.out_h(), g.out_w()};
        break;
      }
      case LayerKind::kReLU:
      case LayerKind::kSigmoid:
      case LayerKind::kTanH:
      case LayerKind::kDropout:
      case LayerKind::kSoftmax: {
        const auto& in = shapes[ls.bottoms[0]];
        d.input_count = count_of(in);
        d.output_count = d.input_count;
        top_shape = in;
        break;
      }
      case LayerKind::kBatchNorm: {
        const auto& in = shapes[ls.bottoms[0]];
        SWC_CHECK_EQ(in.size(), 4u);
        d.input_count = count_of(in);
        d.output_count = d.input_count;
        d.param_count = 2 * in[1];
        top_shape = in;
        break;
      }
      case LayerKind::kLRN: {
        const auto& in = shapes[ls.bottoms[0]];
        d.input_count = count_of(in);
        d.output_count = d.input_count;
        top_shape = in;
        break;
      }
      case LayerKind::kEltwise: {
        const auto& in = shapes[ls.bottoms[0]];
        d.input_count =
            count_of(in) * static_cast<std::int64_t>(ls.bottoms.size());
        d.output_count = count_of(in);
        top_shape = in;
        break;
      }
      case LayerKind::kConcat: {
        const auto& first = shapes[ls.bottoms[0]];
        SWC_CHECK_EQ(first.size(), 4u);
        int channels = 0;
        for (const auto& b : ls.bottoms) channels += shapes[b][1];
        top_shape = {first[0], channels, first[2], first[3]};
        d.input_count = count_of(top_shape);
        d.output_count = d.input_count;
        break;
      }
      case LayerKind::kTransform: {
        const auto& in = shapes[ls.bottoms[0]];
        SWC_CHECK_EQ(in.size(), 4u);
        d.input_count = count_of(in);
        d.output_count = d.input_count;
        d.conv.in_w = in[3];
        top_shape = ls.stride == 0
                        ? std::vector<int>{in[2], in[3], in[1], in[0]}
                        : std::vector<int>{in[3], in[2], in[0], in[1]};
        break;
      }
      case LayerKind::kSoftmaxLoss:
      case LayerKind::kAccuracy: {
        const auto& in = shapes[ls.bottoms[0]];
        d.input_count = count_of(in);
        d.output_count = 1;
        top_shape = {1};
        break;
      }
    }
    shapes[ls.tops[0]] = top_shape;
    out.push_back(d);
  }
  return out;
}

}  // namespace swcaffe::core
