// swtune — bucket-count search for the overlapped all-reduce.
//
// Picks how many layer-aligned buckets to split the packed gradient into by
// scheduling every candidate layout with topo::schedule_overlap and taking
// the argmin finish time. Candidates come from the search-space menu
// (bucket_count_candidates); each layout is filtered through swcheck's
// bucket rules before pricing — an illegal layout (e.g. a buffered round
// that overflows the LDM resend buffer) is never scored. Bucket count 1
// (the paper's single packed message) is always the first candidate, so the
// tuned choice can never finish later than the serial baseline under the
// model.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/overlap.h"

namespace swcaffe::tune {

/// One priced (or rejected) bucket-count candidate.
struct BucketCandidate {
  int requested = 1;   ///< menu entry
  int buckets = 1;     ///< effective layout size (make_buckets clamps)
  double finish_s = 0.0;
  double exposed_comm_s = 0.0;
  bool legal = true;   ///< false: rejected by swcheck, never priced
};

struct BucketChoice {
  int buckets = 1;            ///< argmin bucket count (ties: fewest buckets)
  double serial_s = 0.0;      ///< the k=1 baseline (compute + collective)
  double overlapped_s = 0.0;  ///< the winner's finish time
  double exposed_comm_s = 0.0;
  std::vector<BucketCandidate> candidates;  ///< the full priced table
};

struct BucketTuneOptions {
  int max_buckets = 32;
  /// Legality inputs of the swcheck bucket rules (0 = rule not armed).
  std::int64_t eager_limit = 0;
  std::int64_t resend_buffer_bytes = 0;
};

/// Searches bucket counts for the gradient described by per-layer
/// `layer_bytes`, with backward finishing per-layer at `layer_bwd_s` inside
/// a `compute_s` iteration; `bucket_cost` prices one bucket's collective
/// (typically a topo::cost_* closure at fixed topology/NetParams).
BucketChoice tune_buckets(const std::vector<std::int64_t>& layer_bytes,
                          const std::vector<double>& layer_bwd_s,
                          double compute_s,
                          const topo::BucketCostFn& bucket_cost,
                          const BucketTuneOptions& options = {});

}  // namespace swcaffe::tune
