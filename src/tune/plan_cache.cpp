#include "tune/plan_cache.h"

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace swcaffe::tune {

namespace {

constexpr const char* kMagic = "swtune-plan-cache";

void fnv_mix(std::uint64_t* h, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g;", v);
  for (const char* p = buf; *p; ++p) {
    *h ^= static_cast<unsigned char>(*p);
    *h *= 1099511628211ull;
  }
}

std::string format_direction(const DirectionChoice& c, int index) {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "dir %d %d %d %d %d %d %d %d %d %.17g %.17g %.17g %.17g",
                index, c.implicit ? 1 : 0, c.blocking.block_m,
                c.blocking.block_n, c.blocking.block_k,
                c.blocking.double_buffered ? 1 : 0, c.blocking.bcast_chunk,
                c.channel_block_in, c.channel_block_out, c.tuned_s,
                c.default_s, c.explicit_s, c.implicit_s);
  return buf;
}

bool parse_direction(const std::string& line, DirectionChoice* c, int* index) {
  int implicit = 0, db = 0;
  const int got = std::sscanf(
      line.c_str(), "dir %d %d %d %d %d %d %d %d %d %lg %lg %lg %lg", index,
      &implicit, &c->blocking.block_m, &c->blocking.block_n,
      &c->blocking.block_k, &db, &c->blocking.bcast_chunk,
      &c->channel_block_in, &c->channel_block_out, &c->tuned_s, &c->default_s,
      &c->explicit_s, &c->implicit_s);
  c->implicit = implicit != 0;
  c->blocking.double_buffered = db != 0;
  return got == 13 && *index >= 0 && *index <= 2;
}

bool fail(std::string* error, const std::string& why) {
  if (error) *error = why;
  return false;
}

}  // namespace

std::string chip_fingerprint(const hw::HwParams& hp) {
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
  fnv_mix(&h, hp.core_freq_hz);
  fnv_mix(&h, hp.mesh_rows);
  fnv_mix(&h, hp.mesh_cols);
  fnv_mix(&h, static_cast<double>(hp.ldm_bytes));
  fnv_mix(&h, hp.cpe_cluster_flops);
  fnv_mix(&h, hp.kernel_efficiency);
  fnv_mix(&h, hp.sp_convert_overhead);
  fnv_mix(&h, hp.dma_peak_bw);
  fnv_mix(&h, hp.dma_per_cpe_bw);
  fnv_mix(&h, hp.dma_latency_cycles);
  fnv_mix(&h, hp.dma_stride_setup_cycles);
  fnv_mix(&h, hp.rlc_latency_cycles);
  fnv_mix(&h, hp.rlc_p2p_bw);
  fnv_mix(&h, hp.rlc_bcast_bw);
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, h);
  return buf;
}

std::string PlanCache::key(const core::ConvGeom& g, bool first_conv,
                           int nodes) {
  std::ostringstream os;
  os << nodes << ' ' << (first_conv ? 1 : 0) << ' ' << g.batch << ' ' << g.in_c
     << ' ' << g.out_c << ' ' << g.in_h << ' ' << g.in_w << ' ' << g.kernel
     << ' ' << g.stride << ' ' << g.pad << ' ' << g.group;
  return os.str();
}

const TunedConvPlan* PlanCache::find(const core::ConvGeom& g, bool first_conv,
                                     int nodes) const {
  auto it = plans_.find(key(g, first_conv, nodes));
  return it == plans_.end() ? nullptr : &it->second;
}

void PlanCache::put(const TunedConvPlan& plan) {
  plans_[key(plan.geom, plan.first_conv, plan.nodes)] = plan;
}

bool PlanCache::save(const std::string& path, std::string* error) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return fail(error, "plan cache: cannot write " + path);
  out << kMagic << ' ' << kFormatVersion << '\n';
  out << "chip " << chip_ << '\n';
  for (const auto& [k, plan] : plans_) {
    out << "plan " << k << '\n';
    out << format_direction(plan.forward, 0) << '\n';
    out << format_direction(plan.backward_weight, 1) << '\n';
    out << format_direction(plan.backward_input, 2) << '\n';
  }
  out.flush();
  if (!out) return fail(error, "plan cache: write to " + path + " failed");
  return true;
}

bool PlanCache::load(const std::string& path, std::string* error) {
  plans_.clear();
  std::ifstream in(path);
  if (!in) return fail(error, "plan cache: cannot read " + path);

  std::string line;
  if (!std::getline(in, line)) {
    return fail(error, "plan cache: empty file " + path);
  }
  {
    char magic[64] = {0};
    int version = -1;
    if (std::sscanf(line.c_str(), "%63s %d", magic, &version) != 2 ||
        std::string(magic) != kMagic) {
      return fail(error, "plan cache: not a swtune cache (bad magic/version "
                         "line): " + line);
    }
    if (version != kFormatVersion) {
      return fail(error, "plan cache: format version " +
                             std::to_string(version) + " != expected " +
                             std::to_string(kFormatVersion));
    }
  }
  if (!std::getline(in, line) || line.rfind("chip ", 0) != 0) {
    return fail(error, "plan cache: missing chip fingerprint line");
  }
  if (line.substr(5) != chip_) {
    plans_.clear();
    return fail(error, "plan cache: chip fingerprint " + line.substr(5) +
                           " does not match this configuration " + chip_);
  }

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("plan ", 0) != 0) {
      plans_.clear();
      return fail(error, "plan cache: expected a plan line, got: " + line);
    }
    TunedConvPlan plan;
    plan.from_cache = true;
    int first = 0;
    core::ConvGeom& g = plan.geom;
    if (std::sscanf(line.c_str(), "plan %d %d %d %d %d %d %d %d %d %d %d",
                    &plan.nodes, &first, &g.batch, &g.in_c, &g.out_c, &g.in_h,
                    &g.in_w, &g.kernel, &g.stride, &g.pad, &g.group) != 11) {
      plans_.clear();
      return fail(error, "plan cache: malformed plan line: " + line);
    }
    plan.first_conv = first != 0;
    DirectionChoice* dirs[3] = {&plan.forward, &plan.backward_weight,
                                &plan.backward_input};
    for (int i = 0; i < 3; ++i) {
      int index = -1;
      if (!std::getline(in, line) || !parse_direction(line, dirs[i], &index) ||
          index != i) {
        plans_.clear();
        return fail(error, "plan cache: malformed direction line for plan " +
                               key(g, plan.first_conv, plan.nodes));
      }
    }
    plans_[key(g, plan.first_conv, plan.nodes)] = plan;
  }
  return true;
}

}  // namespace swcaffe::tune
