#include "tune/comm_tune.h"

#include <numeric>

#include "base/log.h"
#include "check/plan_model.h"
#include "check/rules.h"
#include "topo/allreduce.h"
#include "topo/hierarchical.h"
#include "topo/overlap.h"
#include "topo/topology.h"
#include "tune/search_space.h"

namespace swcaffe::tune {

namespace {

/// Analytic cost of the named collective (canonical algorithm names; the
/// caller has already validated the name through swcheck's comm rule).
topo::CostBreakdown algo_cost(const std::string& algorithm, std::int64_t bytes,
                              const topo::Topology& topo,
                              const CommTuneOptions& options) {
  if (algorithm == "rhd-adjacent") {
    return topo::cost_rhd(bytes, topo, options.net,
                          topo::Placement::kAdjacent);
  }
  if (algorithm == "rhd-round-robin") {
    return topo::cost_rhd(bytes, topo, options.net,
                          topo::Placement::kRoundRobin);
  }
  if (algorithm == "hierarchical") {
    return topo::cost_hierarchical(bytes, topo, options.net);
  }
  if (algorithm == "ring") {
    return topo::cost_ring(bytes, topo, options.net,
                           topo::Placement::kAdjacent);
  }
  if (algorithm == "param-server") {
    return topo::cost_param_server(bytes, topo, options.net,
                                   options.param_servers);
  }
  SWC_CHECK_MSG(false, "unknown collective in comm search: " << algorithm);
  return {};
}

}  // namespace

CommChoice tune_comm(const std::vector<double>& layer_bwd_s, double compute_s,
                     const std::vector<std::int64_t>& layer_bytes,
                     int num_nodes, const CommTuneOptions& options) {
  SWC_CHECK_GT(num_nodes, 0);
  SWC_CHECK_GT(options.max_buckets, 0);
  SWC_CHECK_EQ(layer_bytes.size(), layer_bwd_s.size());
  const std::int64_t total_bytes =
      std::accumulate(layer_bytes.begin(), layer_bytes.end(),
                      static_cast<std::int64_t>(0));

  topo::Topology topo;
  topo.num_nodes = num_nodes;
  topo.supernode_size = options.supernode_size;

  // Menu order is the tie-break order: the paper's baseline algorithm first,
  // then uncompressed before lossy codecs, then fewer buckets. The argmin
  // below only replaces on strict improvement, so among equals the earliest
  // (most conservative) configuration wins — deterministically.
  static const char* const kAlgorithms[] = {
      "rhd-round-robin", "rhd-adjacent", "hierarchical", "ring",
      "param-server"};
  static const topo::Compression kCodecs[] = {topo::Compression::kNone,
                                              topo::Compression::kFp16,
                                              topo::Compression::kInt8};

  CommChoice choice;
  bool seeded = false;
  for (const char* algorithm : kAlgorithms) {
    for (topo::Compression codec : kCodecs) {
      int seen_effective = 0;  // layout sizes grow with k; skip repeats
      for (int k : bucket_count_candidates(options.max_buckets)) {
        const std::vector<topo::GradientBucket> layout =
            topo::make_buckets(layer_bytes, k);
        const int effective = static_cast<int>(layout.size());
        if (effective == seen_effective) continue;
        seen_effective = effective;

        CommCandidate cand;
        cand.algorithm = algorithm;
        cand.compression = codec;
        cand.requested_buckets = k;
        cand.buckets = effective;

        // Legality BEFORE pricing: the swcheck comm rule rejects unsupported
        // algorithm x codec compositions and wire-byte claims that don't
        // follow from the codec.
        check::CommPlan plan;
        plan.name = "tune-comm";
        plan.algorithm = algorithm;
        plan.compression = topo::compression_name(codec);
        plan.num_nodes = num_nodes;
        plan.supernode_size = options.supernode_size;
        plan.buckets = effective;
        plan.raw_bytes = total_bytes;
        plan.wire_bytes = 0;
        for (const auto& b : layout) {
          plan.wire_bytes += topo::wire_bytes(codec, b.bytes);
        }
        check::Report report;
        check::check_comm(plan, check::Options{}, plan.name, &report);
        if (!report.ok()) {
          cand.legal = false;
          choice.candidates.push_back(cand);
          continue;
        }

        const auto bucket_cost =
            [&](std::int64_t bytes) -> topo::CostBreakdown {
          return topo::cost_compressed(
              codec, bytes, options.net, [&](std::int64_t wire) {
                return algo_cost(algorithm, wire, topo, options);
              });
        };
        const topo::OverlapTimeline tl =
            topo::schedule_overlap(layout, layer_bwd_s, compute_s,
                                   bucket_cost);
        cand.finish_s = tl.finish_s;
        cand.exposed_comm_s = tl.exposed_comm_s;
        choice.candidates.push_back(cand);

        const bool is_baseline = cand.algorithm == "rhd-round-robin" &&
                                 codec == topo::Compression::kNone && k == 1;
        if (is_baseline) choice.baseline_s = tl.finish_s;
        if (!seeded || tl.finish_s < choice.overlapped_s) {
          seeded = true;
          choice.algorithm = cand.algorithm;
          choice.compression = codec;
          choice.buckets = effective;
          choice.overlapped_s = tl.finish_s;
          choice.exposed_comm_s = tl.exposed_comm_s;
        }
      }
    }
  }
  SWC_CHECK_MSG(seeded && !choice.candidates.empty() &&
                    choice.candidates.front().legal &&
                    choice.candidates.front().requested_buckets == 1,
                "comm search lost its baseline candidate");
  return choice;
}

}  // namespace swcaffe::tune
