// Persistent plan cache: tuned plans keyed by (conv shape, first-conv flag,
// node count) under a chip-configuration fingerprint, with a versioned text
// format on disk. A warm cache lets repeated runs skip the search entirely
// (asserted by trace span counts in tests/tune_test.cpp); a cache written by
// a different format version or for a different chip is rejected at load.
#pragma once

#include <map>
#include <string>

#include "hw/params.h"
#include "tune/plan.h"

namespace swcaffe::tune {

/// FNV-1a fingerprint of every HwParams field the cost model reads. Two
/// processes tune compatible plans iff their fingerprints match.
std::string chip_fingerprint(const hw::HwParams& hp);

class PlanCache {
 public:
  /// Bump when the on-disk schema changes; old files are rejected.
  static constexpr int kFormatVersion = 1;

  explicit PlanCache(const hw::HwParams& hp) : chip_(chip_fingerprint(hp)) {}

  /// Loads `path`, replacing the in-memory contents. Returns false (with a
  /// human-readable reason in *error) on a missing file, a magic/version
  /// mismatch, a chip fingerprint mismatch, or a malformed entry; the cache
  /// is left empty in every failure case, which downgrades to a cold run.
  bool load(const std::string& path, std::string* error = nullptr);

  /// Writes every entry to `path` (atomic enough for single-process use).
  bool save(const std::string& path, std::string* error = nullptr) const;

  /// nullptr when the shape was never tuned on this chip.
  const TunedConvPlan* find(const core::ConvGeom& g, bool first_conv,
                            int nodes) const;
  void put(const TunedConvPlan& plan);

  std::size_t size() const { return plans_.size(); }
  const std::string& chip() const { return chip_; }

  static std::string key(const core::ConvGeom& g, bool first_conv, int nodes);

 private:
  std::string chip_;
  std::map<std::string, TunedConvPlan> plans_;
};

}  // namespace swcaffe::tune
