#include "tune/plan.h"

#include <algorithm>

namespace swcaffe::tune {

namespace {

/// One direction of the ConvEstimate rendering. The invariant estimate_conv
/// consumers rely on: best() == tuned_s and implicit_wins() == implicit.
dnn::ConvDirectionEstimate render(const DirectionChoice& c) {
  dnn::ConvDirectionEstimate d;
  if (c.implicit) {
    d.implicit_s = c.tuned_s;
    // The explicit runner-up; the choice rule guarantees it is slower.
    d.explicit_s = std::max(c.explicit_s, c.tuned_s);
  } else {
    d.explicit_s = c.tuned_s;
    // Keep the implicit column for reporting; clamp so it never "wins" a
    // pass the tuner gave to the explicit plan.
    d.implicit_s = c.implicit_s < 0.0 ? -1.0
                                      : std::max(c.implicit_s, c.tuned_s);
  }
  return d;
}

}  // namespace

dnn::ConvEstimate TunedConvPlan::as_estimate() const {
  dnn::ConvEstimate est;
  est.forward = render(forward);
  est.backward_weight = render(backward_weight);
  est.backward_input = render(backward_input);
  est.gflops_fwd = geom.flops_fwd() / est.forward.best() / 1e9;
  est.gflops_bwd_weight =
      geom.flops_bwd_weight() / est.backward_weight.best() / 1e9;
  est.gflops_bwd_input =
      geom.flops_bwd_input() / est.backward_input.best() / 1e9;
  return est;
}

double NetPlan::tuned_total() const {
  double total = 0.0;
  for (const auto& [name, plan] : convs) total += plan.tuned_total();
  return total;
}

double NetPlan::default_total() const {
  double total = 0.0;
  for (const auto& [name, plan] : convs) total += plan.default_total();
  return total;
}

std::map<std::string, dnn::ConvEstimate> NetPlan::overrides() const {
  std::map<std::string, dnn::ConvEstimate> out;
  for (const auto& [name, plan] : convs) out.emplace(name, plan.as_estimate());
  return out;
}

std::map<std::string, core::ConvPlanAssignment> NetPlan::assignments() const {
  std::map<std::string, core::ConvPlanAssignment> out;
  for (const auto& [name, plan] : convs) out.emplace(name, plan.assignment());
  return out;
}

}  // namespace swcaffe::tune
