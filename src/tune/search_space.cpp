#include "tune/search_space.h"

#include <algorithm>
#include <set>
#include <tuple>

namespace swcaffe::tune {

namespace {

/// Block-edge menu: multiples of the 8x8 mesh from one LDM-friendly panel
/// row up to the largest edge any SW26010 plan can stage. 256 is the
/// hand-written default; 384/512 trade LDM headroom for fewer panel re-reads
/// (the A-panel traffic scales with the number of column blocks).
constexpr int kBlockMenu[] = {64, 128, 256, 384, 512};
constexpr int kChunkMenu[] = {1, 2, 4, 8};

}  // namespace

std::vector<gemm::GemmBlocking> gemm_blocking_candidates(
    const hw::HwParams& hp, std::int64_t m, std::int64_t n, std::int64_t k) {
  std::vector<gemm::GemmBlocking> out;
  out.push_back(gemm::GemmBlocking{});  // the baseline, always first

  // Dedup by the *effective* plan: block edges clamp to the problem dims
  // (a 512 edge on a 256-wide problem is the 256 plan), and buffering /
  // chunking are part of the identity.
  using EffKey = std::tuple<std::int64_t, std::int64_t, std::int64_t, bool, int>;
  auto eff_key = [&](const gemm::GemmBlocking& b) {
    return EffKey{std::min<std::int64_t>(m, b.block_m),
                  std::min<std::int64_t>(n, b.block_n),
                  std::min<std::int64_t>(k, b.block_k), b.double_buffered,
                  b.bcast_chunk};
  };
  std::set<EffKey> seen;
  seen.insert(eff_key(out.front()));

  for (int bm : kBlockMenu) {
    for (int bn : kBlockMenu) {
      for (int bk : kBlockMenu) {
        for (bool db : {true, false}) {
          for (int chunk : kChunkMenu) {
            if (hp.mesh_rows % chunk != 0) continue;
            gemm::GemmBlocking b;
            b.block_m = bm;
            b.block_n = bn;
            b.block_k = bk;
            b.double_buffered = db;
            b.bcast_chunk = chunk;
            if (seen.insert(eff_key(b)).second) out.push_back(b);
          }
        }
      }
    }
  }
  return out;
}

std::vector<ImplicitBlocking> implicit_blocking_candidates(
    const hw::HwParams& hp, const core::ConvGeom& g) {
  // The kernel distributes channels over the mesh: each CPE owns
  // in_c/8 x out_c/8 channel pairs and may sub-block them to fit LDM.
  const int mesh = hp.mesh_rows;
  auto halvings = [](int full) {
    std::vector<int> v;
    for (int b = std::max(1, full); ; b = (b + 1) / 2) {
      v.push_back(b);
      if (b == 1) break;
    }
    return v;
  };
  std::vector<ImplicitBlocking> out;
  for (int cb : halvings(g.in_c / mesh)) {
    for (int ob : halvings(g.out_c / mesh)) {
      out.push_back({cb, ob});
    }
  }
  // Largest working set first: fewest channel passes when legal.
  std::sort(out.begin(), out.end(),
            [](const ImplicitBlocking& a, const ImplicitBlocking& b) {
              const long long wa = 1ll * a.channel_block_in * a.channel_block_out;
              const long long wb = 1ll * b.channel_block_in * b.channel_block_out;
              if (wa != wb) return wa > wb;
              if (a.channel_block_in != b.channel_block_in) {
                return a.channel_block_in > b.channel_block_in;
              }
              return a.channel_block_out > b.channel_block_out;
            });
  return out;
}

std::vector<int> bucket_count_candidates(int max_buckets) {
  std::vector<int> out;
  for (int k = 1; k <= max_buckets; k = k < 4 ? k + 1 : k + k / 2) {
    out.push_back(k);
  }
  if (out.empty()) out.push_back(1);
  return out;
}

}  // namespace swcaffe::tune
