// swtune — cost-model-guided autotuner for SW26010 kernel plan selection.
//
// For each convolution shape the tuner enumerates the candidate plan space
// (implicit vs. explicit im2col path, GEMM block edges, single vs. double
// buffering, RLC broadcast granularity, implicit channel tiling), filters
// every candidate through the swcheck rules — an illegal plan is never
// priced — scores the survivors with the calibrated CostModel and returns
// the argmin as a TunedConvPlan. The hand-written default plan is always the
// first candidate priced, so a tuned plan can never cost more than the
// default under the model (the invariant tests/tune_test.cpp pins).
//
// Search activity is visible in traces: each cold search is a "tune.search"
// span whose duration models the MPE-side closed-form evaluation of the
// candidates, and each warm lookup is a "tune.cache_hit" instant — so "the
// warm cache skips the search" is a checkable trace property, not a claim.
#pragma once

#include <string>
#include <vector>

#include "hw/cost_model.h"
#include "trace/tracer.h"
#include "tune/plan.h"
#include "tune/plan_cache.h"

namespace swcaffe::tune {

struct TuneOptions {
  /// Cluster size the plans are tuned for (part of the plan-cache key; the
  /// per-CG shapes already encode the batch split).
  int nodes = 1;
  /// When non-empty: load this cache before tuning (silently cold on any
  /// load failure) and make Tuner::save_cache() write back to it.
  std::string cache_path;
  /// Record every candidate priced/rejected in TunedConvPlan::candidates
  /// (the conv_plan_explorer presentation layer wants the full table).
  bool keep_candidates = false;
  /// Optional trace sink for search spans / cache-hit instants.
  trace::Tracer* tracer = nullptr;
  int trace_track = 0;
};

struct TuneStats {
  int layers_tuned = 0;     ///< cold searches actually run
  int cache_hits = 0;
  long long evaluated = 0;  ///< candidates priced across all searches
  long long rejected = 0;   ///< candidates the check:: rules refused
};

class Tuner {
 public:
  explicit Tuner(const hw::CostModel& cost, TuneOptions options = {});

  /// Tunes one convolution (cache-aware). `name` labels diagnostics and
  /// trace events only; the cache key is the shape, not the name.
  TunedConvPlan tune_conv(const core::ConvGeom& g, const std::string& name,
                          bool first_conv = false);

  /// Tunes every convolution of a network description. first-conv detection
  /// matches the layer estimators (the first kConv in the list).
  NetPlan tune_net(const std::vector<core::LayerDesc>& descs);

  /// Writes the cache back to TuneOptions::cache_path (no-op without one).
  bool save_cache(std::string* error = nullptr) const;

  const TuneStats& stats() const { return stats_; }
  PlanCache& cache() { return cache_; }
  const hw::CostModel& cost() const { return cost_; }

 private:
  DirectionChoice tune_direction(const core::ConvGeom& gpg,
                                 dnn::ConvDirection dir, int group,
                                 TunedConvPlan* plan);

  const hw::CostModel& cost_;
  TuneOptions options_;
  PlanCache cache_;
  TuneStats stats_;
};

}  // namespace swcaffe::tune
