#include "tune/tuner.h"

#include <algorithm>

#include "base/log.h"
#include "check/verify.h"
#include "tune/search_space.h"

namespace swcaffe::tune {

namespace {

/// Modeled MPE-side cost of pricing one candidate: the closed-form model is
/// a few hundred scalar operations, so a search over ~1000 candidates costs
/// ~2 ms of simulated time — visible in traces, negligible next to a single
/// training iteration, and entirely absent on a warm cache.
constexpr double kCandidateEvalS = 2.0e-6;

}  // namespace

Tuner::Tuner(const hw::CostModel& cost, TuneOptions options)
    : cost_(cost), options_(std::move(options)), cache_(cost.params()) {
  if (!options_.cache_path.empty()) {
    // A missing/stale/foreign cache is not an error: it downgrades to a cold
    // search and save_cache() rewrites the file in the current format.
    std::string error;
    cache_.load(options_.cache_path, &error);
  }
}

DirectionChoice Tuner::tune_direction(const core::ConvGeom& gpg,
                                      dnn::ConvDirection dir, int group,
                                      TunedConvPlan* plan) {
  const hw::HwParams& hp = cost_.params();
  DirectionChoice choice;
  const dnn::ConvGemmShape s = dnn::explicit_gemm_shape(gpg, dir);

  // --- Explicit path: search the GEMM blocking space ------------------------
  // The hand-written default blocking is priced first (the enumeration also
  // starts from GemmBlocking{}, but after a default-plan fix the two can
  // differ), so the argmin can never exceed what estimate_conv charges.
  std::vector<gemm::GemmBlocking> blockings =
      gemm_blocking_candidates(hp, s.m, s.n, s.k);
  const gemm::GemmBlocking default_blocking =
      dnn::default_conv_gemm_blocking(s.m, s.n, s.k);
  if (!(blockings.front() == default_blocking)) {
    blockings.insert(blockings.begin(), default_blocking);
  }
  plan->space_size += static_cast<int>(blockings.size());
  double best_explicit = -1.0;
  for (const gemm::GemmBlocking& b : blockings) {
    const check::Report report =
        check::verify_gemm(cost_, s.m, s.n, s.k, b, plan->layer);
    const bool legal = report.empty();
    double seconds = -1.0;
    if (legal) {
      seconds = group * dnn::explicit_conv_time(cost_, gpg, dir, &b);
      ++plan->evaluated;
      if (best_explicit < 0.0 || seconds < best_explicit) {
        best_explicit = seconds;
        choice.blocking = b;
      }
    } else {
      ++plan->rejected;
    }
    if (options_.keep_candidates) {
      Candidate c;
      c.direction = dir;
      c.implicit = false;
      c.blocking = b;
      c.legal = legal;
      c.seconds = seconds;
      plan->candidates.push_back(c);
    }
  }
  // The default blocking always satisfies the LDM/DMA contracts (it is what
  // every verified paper net runs), so the explicit path cannot come up dry.
  SWC_CHECK_GE(best_explicit, 0.0);
  choice.explicit_s = best_explicit;

  // --- Implicit path: search the channel tiling space -----------------------
  // The model's implicit time is tiling-independent (tilings trade LDM for
  // channel passes at equal traffic), so the search wants the largest tiling
  // the LDM rules accept; candidates come largest-first.
  const double implicit_raw = dnn::implicit_conv_time(cost_, gpg, dir);
  bool implicit_legal = false;
  if (implicit_raw >= 0.0) {
    choice.implicit_s = group * implicit_raw;
    const std::vector<ImplicitBlocking> tilings =
        implicit_blocking_candidates(hp, gpg);
    plan->space_size += static_cast<int>(tilings.size());
    for (const ImplicitBlocking& t : tilings) {
      check::Report report;
      const check::Options opts;
      check::check_ldm(
          check::implicit_conv_ldm_plan(hp, gpg, t.channel_block_in,
                                        t.channel_block_out),
          hp, opts, plan->layer, &report);
      check::check_dma(check::implicit_conv_dma_plan(gpg), opts, plan->layer,
                       &report);
      const bool legal = report.empty();
      if (legal) {
        ++plan->evaluated;
      } else {
        ++plan->rejected;
      }
      if (options_.keep_candidates) {
        Candidate c;
        c.direction = dir;
        c.implicit = true;
        c.channel_block_in = t.channel_block_in;
        c.channel_block_out = t.channel_block_out;
        c.legal = legal;
        c.seconds = legal ? choice.implicit_s : -1.0;
        plan->candidates.push_back(c);
      }
      if (legal && !implicit_legal) {
        implicit_legal = true;
        choice.channel_block_in = t.channel_block_in;
        choice.channel_block_out = t.channel_block_out;
        if (!options_.keep_candidates) break;  // larger tilings all scanned
      }
    }
  }

  choice.implicit =
      implicit_legal && choice.implicit_s < choice.explicit_s;
  choice.tuned_s = choice.implicit ? choice.implicit_s : choice.explicit_s;
  return choice;
}

TunedConvPlan Tuner::tune_conv(const core::ConvGeom& g, const std::string& name,
                               bool first_conv) {
  trace::Tracer* tr = options_.tracer;
  const int track = options_.trace_track;
  if (const TunedConvPlan* hit = cache_.find(g, first_conv, options_.nodes)) {
    ++stats_.cache_hits;
    if (tr) {
      tr->instant(track, "tune cache hit: " + name, "tune.cache_hit");
      tr->counter(track, "tune.cache_hits",
                  static_cast<double>(stats_.cache_hits));
    }
    TunedConvPlan plan = *hit;
    plan.layer = name;
    plan.from_cache = true;
    return plan;
  }

  TunedConvPlan plan;
  plan.layer = name;
  plan.geom = g;
  plan.first_conv = first_conv;
  plan.nodes = options_.nodes;
  if (tr) tr->begin_span(track, "tune " + name, "tune.search");

  const core::ConvGeom gpg = g.per_group();
  const dnn::ConvEstimate def = dnn::estimate_conv(cost_, g);
  plan.forward =
      tune_direction(gpg, dnn::ConvDirection::kForward, g.group, &plan);
  plan.forward.default_s = def.forward.best();
  plan.backward_weight =
      tune_direction(gpg, dnn::ConvDirection::kBackwardWeight, g.group, &plan);
  plan.backward_weight.default_s = def.backward_weight.best();
  plan.backward_input =
      tune_direction(gpg, dnn::ConvDirection::kBackwardInput, g.group, &plan);
  plan.backward_input.default_s = def.backward_input.best();

  ++stats_.layers_tuned;
  stats_.evaluated += plan.evaluated;
  stats_.rejected += plan.rejected;
  if (tr) {
    tr->counter(track, "tune.candidates_evaluated",
                static_cast<double>(plan.evaluated));
    tr->counter(track, "tune.candidates_rejected",
                static_cast<double>(plan.rejected));
    tr->end_span(track, plan.evaluated * kCandidateEvalS);
  }
  cache_.put(plan);
  return plan;
}

NetPlan Tuner::tune_net(const std::vector<core::LayerDesc>& descs) {
  NetPlan plan;
  bool saw_conv = false;
  for (const core::LayerDesc& d : descs) {
    if (d.kind != core::LayerKind::kConv) continue;
    const bool first_conv = !saw_conv;
    saw_conv = true;
    plan.convs.emplace(d.name, tune_conv(d.conv, d.name, first_conv));
  }
  return plan;
}

bool Tuner::save_cache(std::string* error) const {
  if (options_.cache_path.empty()) return true;  // nothing to persist
  return cache_.save(options_.cache_path, error);
}

}  // namespace swcaffe::tune
