// Candidate enumeration for the swtune search (the knobs of ISSUE 3):
// explicit-path GEMM blockings (row/column/reduction block edges, single vs.
// double buffering, RLC broadcast granularity) and implicit-path CPE channel
// tilings. Enumeration is shape-aware only to deduplicate: a block edge
// larger than the problem dimension clamps to it, so menu entries that
// collapse to the same effective plan are emitted once. Legality is NOT
// judged here — the tuner filters through check:: rules before pricing.
#pragma once

#include <cstdint>
#include <vector>

#include "core/layer_desc.h"
#include "hw/params.h"
#include "swgemm/estimate.h"

namespace swcaffe::tune {

/// All distinct GEMM blocking candidates for a (m, n, k) problem. The
/// hand-written default (GemmBlocking{}) is always the first entry, so a
/// search that prices candidates in order starts from the baseline and can
/// only improve on it.
std::vector<gemm::GemmBlocking> gemm_blocking_candidates(
    const hw::HwParams& hp, std::int64_t m, std::int64_t n, std::int64_t k);

/// One implicit-kernel channel tiling: input/output channels per CPE pass.
struct ImplicitBlocking {
  int channel_block_in = 1;
  int channel_block_out = 1;
};

/// Channel tilings for the implicit kernel of a group==1 geometry, largest
/// working set first (the model's implicit time is blocking-independent, so
/// the tuner wants the largest tiling the LDM rules accept — fewest passes).
std::vector<ImplicitBlocking> implicit_blocking_candidates(
    const hw::HwParams& hp, const core::ConvGeom& g);

/// Bucket-count menu of the overlapped all-reduce search (tune_buckets):
/// 1 — the paper's single packed message — is always first, so the search
/// starts from the baseline and can only improve on it; then roughly
/// geometric steps up to `max_buckets`.
std::vector<int> bucket_count_candidates(int max_buckets);

}  // namespace swcaffe::tune
