// swtune — joint algorithm x compression x bucket-count search for the
// gradient all-reduce.
//
// Extends the bucket-count search (tune/bucket_tune) to the full
// communication configuration: which collective to run (flat RHD in either
// placement, two-level hierarchical, ring, parameter server), which gradient
// codec to apply at the source (none / fp16 / int8 with error feedback) and
// how many layer-aligned buckets to overlap with backward. Every combination
// is filtered through swcheck's comm rules (check::check_comm) BEFORE it is
// priced — an illegal combination (e.g. int8 composed with ring, whose
// hop-by-hop re-quantization has no error bound) is recorded as rejected and
// never scored. The paper's configuration (flat improved RHD, no
// compression, one packed message) is always the first candidate, so the
// tuned choice can never be slower than that baseline under the model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topo/compress.h"
#include "topo/network_model.h"

namespace swcaffe::tune {

/// One priced (or rejected) communication configuration.
struct CommCandidate {
  std::string algorithm;  ///< canonical name (parallel::allreduce_algo_name)
  topo::Compression compression = topo::Compression::kNone;
  int requested_buckets = 1;  ///< menu entry
  int buckets = 1;            ///< effective layout size (make_buckets clamps)
  double finish_s = 0.0;
  double exposed_comm_s = 0.0;
  bool legal = true;  ///< false: rejected by swcheck, never priced
};

struct CommChoice {
  std::string algorithm = "rhd-round-robin";
  topo::Compression compression = topo::Compression::kNone;
  int buckets = 1;
  double baseline_s = 0.0;    ///< the paper's config (rhd-rr, none, k=1)
  double overlapped_s = 0.0;  ///< the winner's finish time
  double exposed_comm_s = 0.0;
  std::vector<CommCandidate> candidates;  ///< the full priced table
};

struct CommTuneOptions {
  topo::NetParams net = topo::sunway_network();
  int supernode_size = 256;
  int max_buckets = 32;
  int param_servers = 1;
};

/// Searches (algorithm, compression, bucket count) for the gradient whose
/// per-layer sizes are `layer_bytes`, with backward finishing per-layer at
/// `layer_bwd_s` inside a `compute_s` iteration, across `num_nodes` nodes.
/// Deterministic: fixed menu order, strict-improvement argmin (ties keep the
/// earlier candidate, which orders the baseline first, then fewer buckets).
CommChoice tune_comm(const std::vector<double>& layer_bwd_s, double compute_s,
                     const std::vector<std::int64_t>& layer_bytes,
                     int num_nodes, const CommTuneOptions& options = {});

}  // namespace swcaffe::tune
