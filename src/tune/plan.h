// First-class tuned plans — the currency of the swtune subsystem.
//
// A TunedConvPlan records, for one convolution shape, which strategy and
// which blocking won each of the three passes, what the hand-written default
// would have cost, and (optionally) every candidate the search priced. It
// renders itself as a dnn::ConvEstimate so the existing layer/net estimators
// can consume tuned times without knowing the tuner exists, and as a
// core::ConvPlanAssignment so a live core::Net can be switched onto the
// tuned strategy.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/layer_desc.h"
#include "swdnn/conv_plan.h"
#include "swgemm/estimate.h"

namespace swcaffe::tune {

/// One candidate the search priced (kept only when TuneOptions asks).
struct Candidate {
  dnn::ConvDirection direction = dnn::ConvDirection::kForward;
  bool implicit = false;
  gemm::GemmBlocking blocking;       ///< explicit candidates only
  int channel_block_in = 0;          ///< implicit candidates only
  int channel_block_out = 0;
  bool legal = false;                ///< passed the check:: rules
  double seconds = -1.0;             ///< whole-layer time; -1 when illegal
};

/// The winning plan of one direction plus the baselines it was judged
/// against. All times are whole-layer (group-scaled) simulated seconds.
struct DirectionChoice {
  bool implicit = false;             ///< winning strategy
  gemm::GemmBlocking blocking;       ///< winning GEMM blocking (explicit)
  int channel_block_in = 0;          ///< winning channel blocking (implicit)
  int channel_block_out = 0;
  double tuned_s = 0.0;              ///< time of the winning plan
  double default_s = 0.0;            ///< estimate_conv's best() for this pass
  double explicit_s = -1.0;          ///< best explicit candidate found
  double implicit_s = -1.0;          ///< implicit time (-1 = unsupported)
};

struct TunedConvPlan {
  std::string layer;
  core::ConvGeom geom;
  bool first_conv = false;           ///< input-gradient pass dropped
  int nodes = 1;                     ///< part of the cache key
  bool from_cache = false;

  DirectionChoice forward;
  DirectionChoice backward_weight;
  DirectionChoice backward_input;

  // Search statistics (zero on a cache hit).
  int space_size = 0;                ///< candidates enumerated
  int evaluated = 0;                 ///< candidates priced (legal)
  int rejected = 0;                  ///< candidates the rules refused
  std::vector<Candidate> candidates; ///< kept when TuneOptions.keep_candidates

  double tuned_total() const {
    return forward.tuned_s + backward_weight.tuned_s +
           (first_conv ? 0.0 : backward_input.tuned_s);
  }
  double default_total() const {
    return forward.default_s + backward_weight.default_s +
           (first_conv ? 0.0 : backward_input.default_s);
  }

  /// Renders the tuned plan in estimate_conv's vocabulary: best() returns
  /// the tuned time and implicit_wins() reflects the tuned strategy, so the
  /// plan can be passed to estimate_layer_sw / estimate_net_sw as a conv
  /// override.
  dnn::ConvEstimate as_estimate() const;

  core::ConvPlanAssignment assignment() const {
    core::ConvPlanAssignment a;
    a.implicit_forward = forward.implicit;
    a.implicit_backward = backward_weight.implicit && backward_input.implicit;
    return a;
  }
};

/// Tuned plans for every convolution of one network description.
struct NetPlan {
  std::map<std::string, TunedConvPlan> convs;

  double tuned_total() const;
  double default_total() const;

  /// Conv overrides for dnn::estimate_net_sw (tuned whole-net time).
  std::map<std::string, dnn::ConvEstimate> overrides() const;
  /// Strategy switches for core::Net::apply_conv_plans.
  std::map<std::string, core::ConvPlanAssignment> assignments() const;
};

}  // namespace swcaffe::tune
