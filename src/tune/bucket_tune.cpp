#include "tune/bucket_tune.h"

#include <numeric>

#include "base/log.h"
#include "check/verify.h"
#include "tune/search_space.h"

namespace swcaffe::tune {

BucketChoice tune_buckets(const std::vector<std::int64_t>& layer_bytes,
                          const std::vector<double>& layer_bwd_s,
                          double compute_s,
                          const topo::BucketCostFn& bucket_cost,
                          const BucketTuneOptions& options) {
  SWC_CHECK_GT(options.max_buckets, 0);
  SWC_CHECK_EQ(layer_bytes.size(), layer_bwd_s.size());
  const std::int64_t total_bytes =
      std::accumulate(layer_bytes.begin(), layer_bytes.end(),
                      static_cast<std::int64_t>(0));

  BucketChoice choice;
  int seen_effective = 0;  // layout sizes grow with k; skip repeats
  for (int k : bucket_count_candidates(options.max_buckets)) {
    const std::vector<topo::GradientBucket> layout =
        topo::make_buckets(layer_bytes, k);
    const int effective = static_cast<int>(layout.size());
    if (effective == seen_effective) continue;  // clamp collapsed this k
    seen_effective = effective;

    BucketCandidate cand;
    cand.requested = k;
    cand.buckets = effective;

    check::BucketPlan plan;
    plan.name = "tune-buckets";
    plan.num_layers = static_cast<int>(layer_bytes.size());
    plan.total_bytes = total_bytes;
    plan.eager_limit = options.eager_limit;
    plan.resend_buffer_bytes = options.resend_buffer_bytes;
    for (const auto& b : layout) {
      plan.buckets.push_back({b.first_layer, b.last_layer, b.bytes});
    }
    if (!check::verify_buckets(plan).ok()) {
      cand.legal = false;
      choice.candidates.push_back(cand);
      continue;
    }

    const topo::OverlapTimeline tl =
        topo::schedule_overlap(layout, layer_bwd_s, compute_s, bucket_cost);
    cand.finish_s = tl.finish_s;
    cand.exposed_comm_s = tl.exposed_comm_s;
    choice.candidates.push_back(cand);

    if (k == 1) {
      // The baseline is always legal (one bucket == the packed message the
      // trainer already sends) and seeds the argmin.
      choice.serial_s = tl.finish_s;
      choice.buckets = effective;
      choice.overlapped_s = tl.finish_s;
      choice.exposed_comm_s = tl.exposed_comm_s;
    } else if (tl.finish_s < choice.overlapped_s) {
      choice.buckets = effective;
      choice.overlapped_s = tl.finish_s;
      choice.exposed_comm_s = tl.exposed_comm_s;
    }
  }
  SWC_CHECK_MSG(!choice.candidates.empty() &&
                    choice.candidates.front().requested == 1 &&
                    choice.candidates.front().legal,
                "bucket search lost its k=1 baseline");
  return choice;
}

}  // namespace swcaffe::tune
