#include "swdnn/pool_sim.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "base/log.h"
#include "hw/dma.h"

namespace swcaffe::dnn {

hw::TrafficLedger max_pool_sim(hw::CoreGroup& cg, const core::PoolGeom& g,
                               std::span<const float> bottom,
                               std::span<float> top) {
  const int oh = g.out_h(), ow = g.out_w();
  SWC_CHECK_EQ(bottom.size(), static_cast<std::size_t>(g.batch) * g.channels *
                                  g.in_h * g.in_w);
  SWC_CHECK_EQ(top.size(), static_cast<std::size_t>(g.batch) * g.channels *
                               oh * ow);
  const int ncpe = cg.params().mesh_size();
  cg.reset();
  hw::DmaEngine dma(cg.cost());

  // Sec. IV-D: "most of times, each CPE is in charge of pooling operation
  // for multiple K rows of input image" — the work unit here is one output
  // row of one channel plane: DMA-get its K source rows, pool in LDM, put
  // the output row. Rows shared by overlapping windows (stride < kernel)
  // stay resident and are fetched once per plane.
  std::vector<double> row(g.in_w), out_row(ow), staged(ow);
  const std::size_t in_plane = static_cast<std::size_t>(g.in_h) * g.in_w;
  const std::size_t out_plane = static_cast<std::size_t>(oh) * ow;
  std::vector<std::vector<double>> resident(g.in_h);

  for (int b = 0; b < g.batch; ++b) {
    for (int c = 0; c < g.channels; ++c) {
      const float* plane =
          bottom.data() + (static_cast<std::size_t>(b) * g.channels + c) *
                              in_plane;
      for (auto& r : resident) r.clear();
      for (int py = 0; py < oh; ++py) {
        const int y0 = std::max(py * g.stride - g.pad, 0);
        const int y1 =
            std::min(py * g.stride - g.pad + g.kernel, g.in_h);
        for (int sy = y0; sy < y1; ++sy) {
          if (!resident[sy].empty()) continue;
          for (int x = 0; x < g.in_w; ++x) row[x] = plane[sy * g.in_w + x];
          resident[sy].resize(g.in_w);
          dma.get(row, resident[sy], ncpe);
        }
        for (int px = 0; px < ow; ++px) {
          const int x0 = std::max(px * g.stride - g.pad, 0);
          const int x1 =
              std::min(px * g.stride - g.pad + g.kernel, g.in_w);
          double best = -std::numeric_limits<double>::infinity();
          for (int sy = y0; sy < y1; ++sy) {
            for (int sx = x0; sx < x1; ++sx) {
              best = std::max(best, resident[sy][sx]);
            }
          }
          out_row[px] = best;
        }
        dma.put(out_row, std::span<double>(staged), ncpe);
        float* dst = top.data() +
                     (static_cast<std::size_t>(b) * g.channels + c) * out_plane +
                     static_cast<std::size_t>(py) * ow;
        for (int x = 0; x < ow; ++x) dst[x] = static_cast<float>(staged[x]);
      }
    }
  }
  return dma.ledger();
}

}  // namespace swcaffe::dnn
