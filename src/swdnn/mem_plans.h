// DMA plans for the bandwidth-bound layers (paper Sec. IV-C/IV-D).
//
// On SW26010 these layers are pure data movement: the plan is "choose DMA
// run lengths that keep the memory controller saturated". Pooling reads K
// image rows per CPE when they fit LDM and falls back to strided column
// blocks otherwise (Sec. IV-D); elementwise layers stream their operands;
// the tensor-transformation layer pays strided access plus SIMD shuffles
// (Sec. IV-C).
#pragma once

#include "core/layer_desc.h"
#include "hw/cost_model.h"

namespace swcaffe::dnn {

/// Streaming time for `bytes` of traffic whose contiguous runs are
/// `run_bytes` long, on the full CPE mesh of one core group.
double stream_time(const hw::CostModel& cost, double bytes,
                   std::size_t run_bytes);

/// Pooling forward/backward (max or average have the same traffic; max adds
/// a mask the backward pass re-reads).
double pool_forward_time(const hw::CostModel& cost, const core::PoolGeom& g);
double pool_backward_time(const hw::CostModel& cost, const core::PoolGeom& g);

/// Elementwise families: `passes` counts how many times the tensor is
/// streamed (ReLU fwd = read+write = 2, BN fwd = 4, ...).
double elementwise_time(const hw::CostModel& cost, std::int64_t count,
                        double passes);

/// Tensor transformation layer: (B,N,R,C) <-> (R,C,N,B) transpose via
/// strided DMA gather + register shuffles. `inner_run` is the contiguous
/// run length in elements on the gather side.
double transform_time(const hw::CostModel& cost, std::int64_t count,
                      int inner_run);

}  // namespace swcaffe::dnn
