// Functional convolution in both of swCaffe's plans.
//
// The explicit plan is im2col + GEMM (original Caffe, Sec. IV-B1); the
// implicit plan computes the same convolution with direct blocked loops (the
// swDNN kernel of Sec. IV-B2 — on real hardware it runs in the (R,C,N,B)
// layout; functionally the schedules are equivalent, which the tests
// assert). Both paths compute identical results; the conv layer auto-tuner
// picks between them using the conv_plan cost model.
#pragma once

#include "core/layer_desc.h"

namespace swcaffe::dnn {

/// top(b,no,oh,ow) = sum over ni,kh,kw of bottom * weight + bias.
/// `col_buf` must hold in_c*K*K*out_h*out_w floats (one image's columns);
/// pass nullptr to use a thread-local scratch buffer.
void conv_forward_explicit(const core::ConvGeom& g, const float* bottom,
                           const float* weight, const float* bias, float* top,
                           float* col_buf = nullptr);

/// Direct-loop forward; same contract, no column buffer.
void conv_forward_implicit(const core::ConvGeom& g, const float* bottom,
                           const float* weight, const float* bias, float* top);

/// weight_diff += d(top)/d(weight); bias_diff += per-channel sums (may be
/// null when the layer has no bias).
void conv_backward_weight(const core::ConvGeom& g, const float* bottom,
                          const float* top_diff, float* weight_diff,
                          float* bias_diff, float* col_buf = nullptr);

/// bottom_diff = d(top)/d(bottom) (overwritten, not accumulated).
void conv_backward_input(const core::ConvGeom& g, const float* weight,
                         const float* top_diff, float* bottom_diff,
                         float* col_buf = nullptr);

}  // namespace swcaffe::dnn
