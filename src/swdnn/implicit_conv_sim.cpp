#include "swdnn/implicit_conv_sim.h"

#include <algorithm>
#include <span>
#include <vector>

#include "base/log.h"
#include "hw/dma.h"

namespace swcaffe::dnn {

hw::TrafficLedger implicit_conv_forward_sim(hw::CoreGroup& cg,
                                            const core::ConvGeom& g,
                                            std::span<const float> bottom,
                                            std::span<const float> weight,
                                            const float* bias,
                                            std::span<float> top) {
  const hw::HwParams& hp = cg.params();
  const int mesh = hp.mesh_rows;
  SWC_CHECK_EQ(hp.mesh_rows, hp.mesh_cols);
  SWC_CHECK_MSG(g.in_c % mesh == 0 && g.out_c % mesh == 0,
                "implicit kernel needs channel counts divisible by the mesh: "
                "Ni=" << g.in_c << " No=" << g.out_c);
  const int oh = g.out_h(), ow = g.out_w();
  SWC_CHECK_EQ(bottom.size(), static_cast<std::size_t>(g.input_count()));
  SWC_CHECK_EQ(weight.size(), static_cast<std::size_t>(g.weight_count()));
  SWC_CHECK_EQ(top.size(), static_cast<std::size_t>(g.output_count()));

  const int ni_grp = g.in_c / mesh;   // input channels per mesh row
  const int no_grp = g.out_c / mesh;  // output channels per mesh column
  const int ncpe = hp.mesh_size();

  cg.reset();
  hw::DmaEngine dma(cg.cost());
  hw::RlcFabric& rlc = cg.rlc();

  // --- Load each CPE's resident filter block once -----------------------------
  // CPE(i,j) holds W[no in group j][ni in group i][K][K].
  const std::size_t wblk =
      static_cast<std::size_t>(no_grp) * ni_grp * g.kernel * g.kernel;
  std::vector<std::vector<double>> wtile(
      static_cast<std::size_t>(ncpe));
  {
    std::vector<double> stage(static_cast<std::size_t>(ni_grp) * g.kernel *
                              g.kernel);
    for (int i = 0; i < mesh; ++i) {
      for (int j = 0; j < mesh; ++j) {
        hw::Ldm& ldm = cg.ldm(i, j);
        auto tile = ldm.alloc(wblk);
        // One strided DMA per output channel of the block: a (ni_grp*K*K)
        // contiguous run inside the (No, Ni, K, K) filter tensor.
        for (int oc = 0; oc < no_grp; ++oc) {
          const int no = j * no_grp + oc;
          const std::size_t src_off =
              (static_cast<std::size_t>(no) * g.in_c + i * ni_grp) *
              g.kernel * g.kernel;
          for (std::size_t e = 0; e < stage.size(); ++e) {
            stage[e] = weight[src_off + e];  // SP -> DP conversion
          }
          dma.get(stage, tile.subspan(oc * stage.size(), stage.size()), ncpe);
        }
        wtile[i * mesh + j].assign(tile.begin(), tile.end());
      }
    }
  }

  // Row-leader staging buffers, allocated ONCE next to the resident filter
  // block. (A mid-kernel Ldm::reset here used to wipe the leaders' filter
  // accounting, so overflowing plans went undetected — swcheck's
  // implicit_conv_sim_ldm_plan mirrors this layout exactly.)
  std::vector<std::span<double>> leader_buf(static_cast<std::size_t>(mesh));
  for (int i = 0; i < mesh; ++i) {
    leader_buf[static_cast<std::size_t>(i)] = cg.ldm(i, 0).alloc(g.in_w);
  }

  const std::size_t in_plane = static_cast<std::size_t>(g.in_h) * g.in_w;
  const std::size_t out_plane = static_cast<std::size_t>(oh) * ow;
  std::vector<double> in_rows(static_cast<std::size_t>(ni_grp) * g.kernel *
                              g.in_w);
  std::vector<double> out_stage(ow);

  for (int b = 0; b < g.batch; ++b) {
    const float* img = bottom.data() + static_cast<std::size_t>(b) * g.in_c *
                                           in_plane;
    float* out = top.data() + static_cast<std::size_t>(b) * g.out_c * out_plane;
    for (int y = 0; y < oh; ++y) {
      // --- Input stage: row leader CPE(i, 0) loads the K needed rows of its
      // channel group and broadcasts along mesh row i.
      for (int i = 0; i < mesh; ++i) {
        std::fill(in_rows.begin(), in_rows.end(), 0.0);
        for (int ic = 0; ic < ni_grp; ++ic) {
          const int ni = i * ni_grp + ic;
          for (int kh = 0; kh < g.kernel; ++kh) {
            const int sy = y * g.stride + kh - g.pad;
            if (sy < 0 || sy >= g.in_h) continue;  // coordinate-mapped pad
            const float* row = img + ni * in_plane +
                               static_cast<std::size_t>(sy) * g.in_w;
            double* dst =
                in_rows.data() + (static_cast<std::size_t>(ic) * g.kernel +
                                  kh) *
                                     g.in_w;
            std::vector<double> stage(g.in_w);
            for (int x = 0; x < g.in_w; ++x) stage[x] = row[x];
            // The leader's LDM receives one contiguous row per DMA into its
            // persistent staging buffer (reused every output row).
            auto buf = leader_buf[static_cast<std::size_t>(i)];
            dma.get(stage, buf, mesh /* one leader per row */);
            std::copy(buf.begin(), buf.end(), dst);
          }
        }
        rlc.row_broadcast(i, 0, in_rows);
        // Functional delivery: drain the 7 peer queues (the leader keeps its
        // own copy); all consumers see identical data.
        for (int j = 1; j < mesh; ++j) {
          const std::vector<double> got = rlc.receive_row(i, j);
          SWC_CHECK_EQ(got.size(), in_rows.size());
        }
      }
      // --- Compute stage: CPE(i,j) produces partial output rows for its
      // output-channel group from input-channel group i, then columns reduce
      // to row 0.
      for (int j = 0; j < mesh; ++j) {
        for (int oc = 0; oc < no_grp; ++oc) {
          const int no = j * no_grp + oc;
          std::vector<double> acc(ow, 0.0);
          for (int i = 0; i < mesh; ++i) {
            // Recompute row i's broadcast contents (identical to what the
            // fabric delivered above).
            std::vector<double> partial(ow, 0.0);
            const std::vector<double>& w = wtile[i * mesh + j];
            for (int ic = 0; ic < ni_grp; ++ic) {
              const int ni = i * ni_grp + ic;
              for (int kh = 0; kh < g.kernel; ++kh) {
                const int sy = y * g.stride + kh - g.pad;
                if (sy < 0 || sy >= g.in_h) continue;
                const float* row = img + ni * in_plane +
                                   static_cast<std::size_t>(sy) * g.in_w;
                for (int kw = 0; kw < g.kernel; ++kw) {
                  const double wv =
                      w[((static_cast<std::size_t>(oc) * ni_grp + ic) *
                             g.kernel +
                         kh) *
                            g.kernel +
                        kw];
                  for (int x = 0; x < ow; ++x) {
                    const int sx = x * g.stride + kw - g.pad;
                    if (sx < 0 || sx >= g.in_w) continue;
                    partial[x] += wv * row[sx];
                  }
                }
              }
            }
            if (i == 0) {
              acc = partial;
            } else {
              // Column reduction: CPE(i,j) sends its partial to CPE(0,j).
              rlc.send(i, j, 0, j, partial);
              const std::vector<double> got = rlc.receive_col(0, j);
              for (int x = 0; x < ow; ++x) acc[x] += got[x];
            }
          }
          if (bias != nullptr) {
            for (int x = 0; x < ow; ++x) acc[x] += bias[no];
          }
          // DP -> SP convert and DMA-put one contiguous output row.
          std::vector<double> put_stage(acc.begin(), acc.end());
          out_stage.assign(ow, 0.0);
          dma.put(put_stage, out_stage, mesh);
          float* dst = out + no * out_plane + static_cast<std::size_t>(y) * ow;
          for (int x = 0; x < ow; ++x) dst[x] = static_cast<float>(out_stage[x]);
        }
      }
    }
  }
  SWC_CHECK_EQ(rlc.pending(), 0u);

  hw::TrafficLedger ledger = dma.ledger();
  ledger.add(rlc.ledger());
  ledger.flops = g.flops_fwd();
  // Compute overlaps the RLC pipeline; DMA is the exposed remainder.
  ledger.elapsed_s = dma.ledger().elapsed_s +
                     std::max(cg.cost().compute_time(ledger.flops),
                              rlc.ledger().elapsed_s);
  return ledger;
}

}  // namespace swcaffe::dnn
