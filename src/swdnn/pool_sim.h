// Functional simulation of the pooling DMA plan (paper Sec. IV-D): pooling
// is "featured with massive memory copy operations", so each CPE streams K
// input rows through its LDM (or strided column blocks when K rows exceed
// the LDM) and writes one pooled output row. Validated against the host
// pooling layer; the ledger checks the read-input-once / write-output-once
// traffic the cost model assumes.
#pragma once

#include <span>

#include "core/layer_desc.h"
#include "hw/chip.h"
#include "hw/cost_model.h"

namespace swcaffe::dnn {

/// Max pooling over one (channels, in_h, in_w) image -> pooled output.
/// `geom.batch` images are processed back to back.
hw::TrafficLedger max_pool_sim(hw::CoreGroup& cg, const core::PoolGeom& geom,
                               std::span<const float> bottom,
                               std::span<float> top);

}  // namespace swcaffe::dnn
