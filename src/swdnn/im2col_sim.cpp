#include "swdnn/im2col_sim.h"

#include <vector>

#include "base/log.h"
#include "hw/dma.h"

namespace swcaffe::dnn {

hw::TrafficLedger im2col_sim(hw::CoreGroup& cg, const core::ConvGeom& g,
                             std::span<const float> img,
                             std::span<float> col) {
  const int oh = g.out_h(), ow = g.out_w();
  SWC_CHECK_EQ(img.size(),
               static_cast<std::size_t>(g.in_c) * g.in_h * g.in_w);
  SWC_CHECK_EQ(col.size(), static_cast<std::size_t>(g.in_c) * g.kernel *
                               g.kernel * oh * ow);
  const int ncpe = cg.params().mesh_size();

  cg.reset();
  hw::DmaEngine dma(cg.cost());
  std::vector<double> row_buf(g.in_w);
  std::vector<double> line(ow);
  std::vector<double> line_out(ow);

  // One logical work item per (channel, OUTPUT row y, kernel row kh); the
  // plan distributes items round-robin over the 64 CPEs (the DMA engine is
  // told all CPEs stream concurrently). Reading is per INPUT row: a row is
  // fetched when its first consumer needs it; rows land in LDM and are
  // re-used by the same CPE for every kw.
  for (int c = 0; c < g.in_c; ++c) {
    const float* plane = img.data() + static_cast<std::size_t>(c) * g.in_h *
                                          g.in_w;
    std::vector<bool> row_read(g.in_h, false);
    for (int kh = 0; kh < g.kernel; ++kh) {
      for (int y = 0; y < oh; ++y) {
        const int sy = y * g.stride + kh - g.pad;
        const bool in_image = sy >= 0 && sy < g.in_h;
        if (in_image && !row_read[sy]) {
          // DMA-get the input row once (Fig. 4 left: one row per CPE).
          for (int x = 0; x < g.in_w; ++x) row_buf[x] = plane[sy * g.in_w + x];
          hw::Ldm& ldm = cg.ldm((sy + c) % cg.mesh_rows(),
                                (sy / cg.mesh_rows()) % cg.mesh_cols());
          ldm.reset();
          auto buf = ldm.alloc(g.in_w);
          std::vector<double> stage(row_buf);
          dma.get(stage, buf, ncpe);
          row_read[sy] = true;
        }
        // Write the K shifted/padded lines for this (y, kh).
        for (int kw = 0; kw < g.kernel; ++kw) {
          for (int x = 0; x < ow; ++x) {
            const int sx = x * g.stride + kw - g.pad;
            line[x] = (in_image && sx >= 0 && sx < g.in_w)
                          ? plane[sy * g.in_w + sx]
                          : 0.0;
          }
          dma.put(line, std::span<double>(line_out), ncpe);
          const std::size_t col_row =
              (static_cast<std::size_t>(c) * g.kernel + kh) * g.kernel + kw;
          float* dst = col.data() + (col_row * oh + y) * ow;
          for (int x = 0; x < ow; ++x) dst[x] = static_cast<float>(line_out[x]);
        }
      }
    }
  }
  return dma.ledger();
}

hw::TrafficLedger col2im_sim(hw::CoreGroup& cg, const core::ConvGeom& g,
                             std::span<const float> col,
                             std::span<float> img) {
  const int oh = g.out_h(), ow = g.out_w();
  SWC_CHECK_EQ(img.size(),
               static_cast<std::size_t>(g.in_c) * g.in_h * g.in_w);
  SWC_CHECK_EQ(col.size(), static_cast<std::size_t>(g.in_c) * g.kernel *
                               g.kernel * oh * ow);
  const int ncpe = cg.params().mesh_size();

  cg.reset();
  hw::DmaEngine dma(cg.cost());
  std::vector<double> line(ow), line_in(ow);
  std::vector<double> row_stage(g.in_w), row_back(g.in_w);

  for (int c = 0; c < g.in_c; ++c) {
    float* plane = img.data() + static_cast<std::size_t>(c) * g.in_h * g.in_w;
    for (int kh = 0; kh < g.kernel; ++kh) {
      for (int y = 0; y < oh; ++y) {
        const int sy = y * g.stride + kh - g.pad;
        if (sy < 0 || sy >= g.in_h) continue;  // pad lines are dropped
        // Read-modify-write: the target image row is fetched, the K shifted
        // column lines accumulate into it, and the row is stored back.
        for (int x = 0; x < g.in_w; ++x) row_stage[x] = plane[sy * g.in_w + x];
        dma.get(row_stage, std::span<double>(row_back), ncpe);
        for (int kw = 0; kw < g.kernel; ++kw) {
          const std::size_t col_row =
              (static_cast<std::size_t>(c) * g.kernel + kh) * g.kernel + kw;
          const float* src = col.data() + (col_row * oh + y) * ow;
          for (int x = 0; x < ow; ++x) line[x] = src[x];
          dma.get(line, std::span<double>(line_in), ncpe);
          for (int x = 0; x < ow; ++x) {
            const int sx = x * g.stride + kw - g.pad;
            if (sx >= 0 && sx < g.in_w) row_back[sx] += line_in[x];
          }
        }
        dma.put(row_back, std::span<double>(row_stage), ncpe);
        for (int x = 0; x < g.in_w; ++x) {
          plane[sy * g.in_w + x] = static_cast<float>(row_stage[x]);
        }
      }
    }
  }
  return dma.ledger();
}

}  // namespace swcaffe::dnn
