#include "swdnn/layer_estimate.h"

#include <algorithm>
#include <optional>

#include "base/log.h"
#include "swdnn/conv_plan.h"
#include "swdnn/mem_plans.h"
#include "swgemm/estimate.h"
#include "trace/tracer.h"

namespace swcaffe::dnn {

namespace {

double gemm_s(const hw::CostModel& cost, std::int64_t m, std::int64_t n,
              std::int64_t k) {
  return gemm::estimate_gemm(cost, m, n, k).seconds;
}

// Fixed cost of launching one layer pass on the CPE cluster: athread_spawn/
// athread_join plus the MPE-side synchronization shown in Fig. 5 happen for
// EVERY layer in every direction. Calibrated against Table III: it is what
// makes deep small-layer networks (ResNet-50: ~176 layers, GoogleNet: ~140)
// "exhibit stronger memory-bounded properties" than their flop counts alone
// suggest, while being negligible for AlexNet/VGG's two dozen fat layers.
constexpr double kLaunchOverheadS = 3.0e-3;

/// Fig. 4 transformation volumes (duplicated from conv_plan.cpp's internal
/// helpers; only used to label trace spans, never to compute time).
std::size_t conv_image_bytes(const core::ConvGeom& g) {
  return 4ull * g.batch * g.in_c * g.in_h * g.in_w;
}
std::size_t conv_col_bytes(const core::ConvGeom& g) {
  return 4ull * g.batch * g.in_c * g.kernel * g.kernel * g.out_h() *
         g.out_w();
}

void charge_flops(trace::Tracer* tr, int track, double flops) {
  trace::TrafficCounters c;
  c.flops = flops;
  tr->charge(track, c);
}

/// One closed child span of `seconds` with optional byte/flop counters.
void child_span(trace::Tracer* tr, int track, const char* name,
                const char* category, double seconds,
                const trace::TrafficCounters& c = {}) {
  tr->begin_span(track, name, category);
  if (!c.empty()) tr->charge(track, c);
  tr->end_span(track, std::max(0.0, seconds));
}

/// Emits the layer's span tree: <name> → {fwd, bwd} → kernel-phase children
/// (im2col / gemm / implicit / col2im for convolutions). The clock is
/// snapped to the exact fwd_s/bwd_s boundaries of the already-computed
/// LayerTime, so re-derived child durations cannot drift the timeline: the
/// layer span's duration equals the table's fwd+bwd to the last ulp.
void trace_layer(const hw::CostModel& cost, const core::LayerDesc& d,
                 bool first_conv, const LayerTime& t,
                 const std::optional<ConvEstimate>& conv) {
  trace::Tracer* tr = cost.tracer();
  const int track = cost.trace_track();
  const double t0 = tr->now(track);
  auto snap = [&](double target) {
    const double now = tr->now(track);
    if (target > now) tr->advance(track, target - now);
  };

  tr->begin_span(track, d.name, "layer");
  const bool conv_phases = conv.has_value() && d.conv.group == 1;

  tr->begin_span(track, "fwd", "layer.phase");
  if (conv_phases) {
    const core::ConvGeom& g = d.conv;
    trace::TrafficCounters flops;
    flops.flops = g.flops_fwd();
    if (conv->forward.implicit_wins()) {
      child_span(tr, track, "implicit_conv", "kernel.conv",
                 conv->forward.implicit_s, flops);
    } else {
      const double im2col_s = im2col_time(cost, g);
      trace::TrafficCounters dma;
      dma.dma_get_bytes = conv_image_bytes(g);
      dma.dma_put_bytes = conv_col_bytes(g);
      child_span(tr, track, "im2col", "kernel.transform", im2col_s, dma);
      child_span(tr, track, "gemm", "kernel.gemm",
                 conv->forward.explicit_s - im2col_s, flops);
    }
  } else if (d.kind == core::LayerKind::kInnerProduct ||
             d.kind == core::LayerKind::kLSTM) {
    charge_flops(tr, track, d.fc.flops_fwd() * d.steps);
  }
  snap(t0 + t.fwd_s);
  tr->end_span(track);

  tr->begin_span(track, "bwd", "layer.phase");
  if (conv_phases) {
    const core::ConvGeom& g = d.conv;
    trace::TrafficCounters flops;
    flops.flops = g.flops_bwd_weight();
    if (conv->backward_weight.implicit_wins()) {
      child_span(tr, track, "dW.implicit_conv", "kernel.conv",
                 conv->backward_weight.implicit_s, flops);
    } else {
      const double im2col_s = im2col_time(cost, g);
      trace::TrafficCounters dma;
      dma.dma_get_bytes = conv_image_bytes(g);
      dma.dma_put_bytes = conv_col_bytes(g);
      child_span(tr, track, "dW.im2col", "kernel.transform", im2col_s, dma);
      child_span(tr, track, "dW.gemm", "kernel.gemm",
                 conv->backward_weight.explicit_s - im2col_s, flops);
    }
    if (!first_conv) {
      flops.flops = g.flops_bwd_input();
      if (conv->backward_input.implicit_wins()) {
        child_span(tr, track, "dX.implicit_conv", "kernel.conv",
                   conv->backward_input.implicit_s, flops);
      } else {
        const double col2im_s = col2im_time(cost, g);
        child_span(tr, track, "dX.gemm", "kernel.gemm",
                   conv->backward_input.explicit_s - col2im_s, flops);
        trace::TrafficCounters dma;
        dma.dma_get_bytes = conv_col_bytes(g);
        dma.dma_put_bytes = conv_image_bytes(g);
        child_span(tr, track, "dX.col2im", "kernel.transform", col2im_s, dma);
      }
    }
  } else if (d.kind == core::LayerKind::kInnerProduct ||
             d.kind == core::LayerKind::kLSTM) {
    charge_flops(tr, track, 2.0 * d.fc.flops_fwd() * d.steps);
  }
  snap(t0 + t.fwd_s + t.bwd_s);
  tr->end_span(track);

  tr->end_span(track);  // layer
}

}  // namespace

LayerTime estimate_layer_sw(const hw::CostModel& cost,
                            const core::LayerDesc& d, bool first_conv) {
  return estimate_layer_sw(cost, d, first_conv, nullptr);
}

LayerTime estimate_layer_sw(const hw::CostModel& cost,
                            const core::LayerDesc& d, bool first_conv,
                            const ConvEstimate* conv_override) {
  LayerTime t;
  std::optional<ConvEstimate> conv_est;
  bool launch_overhead = true;
  switch (d.kind) {
    case core::LayerKind::kConv: {
      conv_est = conv_override ? *conv_override : estimate_conv(cost, d.conv);
      t.fwd_s = conv_est->forward.best();
      t.bwd_s = conv_est->best_bwd(first_conv);
      break;
    }
    case core::LayerKind::kInnerProduct: {
      // fwd: out(m x n) = in(m x k) W^T; bwd: dW(n x k) and dIn(m x k).
      t.fwd_s = gemm_s(cost, d.fc.m, d.fc.n, d.fc.k);
      t.bwd_s = gemm_s(cost, d.fc.n, d.fc.k, d.fc.m) +
                gemm_s(cost, d.fc.m, d.fc.k, d.fc.n);
      break;
    }
    case core::LayerKind::kLSTM: {
      // The recurrence serializes: one fused gate GEMM per time step in each
      // direction, plus BPTT's weight-gradient GEMM (small elementwise gate
      // math folds into bandwidth noise).
      const double step_fwd = gemm_s(cost, d.fc.m, d.fc.n, d.fc.k);
      const double step_bwd = gemm_s(cost, d.fc.n, d.fc.k, d.fc.m) +
                              gemm_s(cost, d.fc.m, d.fc.k, d.fc.n);
      t.fwd_s = d.steps * step_fwd;
      t.bwd_s = d.steps * step_bwd;
      break;
    }
    case core::LayerKind::kPool:
      t.fwd_s = pool_forward_time(cost, d.pool);
      t.bwd_s = pool_backward_time(cost, d.pool);
      break;
    case core::LayerKind::kReLU:
      t.fwd_s = elementwise_time(cost, d.input_count, 2.0);
      t.bwd_s = elementwise_time(cost, d.input_count, 3.0);
      break;
    case core::LayerKind::kSigmoid:
    case core::LayerKind::kTanH:
      // Transcendentals cost an extra evaluation pass on the CPE pipelines.
      t.fwd_s = elementwise_time(cost, d.input_count, 3.0);
      t.bwd_s = elementwise_time(cost, d.input_count, 3.0);
      break;
    case core::LayerKind::kBatchNorm:
      // fwd: mean pass, variance pass, normalize read+write.
      t.fwd_s = elementwise_time(cost, d.input_count, 4.0);
      t.bwd_s = elementwise_time(cost, d.input_count, 5.0);
      break;
    case core::LayerKind::kLRN:
      // cross-channel sums make LRN the heaviest elementwise family.
      t.fwd_s = elementwise_time(cost, d.input_count, 6.0);
      t.bwd_s = elementwise_time(cost, d.input_count, 8.0);
      break;
    case core::LayerKind::kDropout:
      t.fwd_s = elementwise_time(cost, d.input_count, 3.0);
      t.bwd_s = elementwise_time(cost, d.input_count, 3.0);
      break;
    case core::LayerKind::kSoftmax:
    case core::LayerKind::kSoftmaxLoss:
      t.fwd_s = elementwise_time(cost, d.input_count, 4.0);
      t.bwd_s = elementwise_time(cost, d.input_count, 2.0);
      break;
    case core::LayerKind::kEltwise:
      t.fwd_s = elementwise_time(cost, d.input_count, 3.0);
      t.bwd_s = elementwise_time(cost, d.input_count, 2.0);
      break;
    case core::LayerKind::kConcat:
      t.fwd_s = elementwise_time(cost, d.output_count, 2.0);
      t.bwd_s = elementwise_time(cost, d.output_count, 2.0);
      break;
    case core::LayerKind::kTransform: {
      // Inner contiguous run of the (B,N,R,C)->(R,C,N,B) gather is the C
      // (width) axis of the source.
      const int run = d.conv.in_w > 0 ? d.conv.in_w : 64;
      t.fwd_s = transform_time(cost, d.input_count, run);
      t.bwd_s = transform_time(cost, d.input_count, run);
      break;
    }
    case core::LayerKind::kData:
    case core::LayerKind::kAccuracy:
      // I/O is modelled by swcaffe::io; accuracy is negligible.
      launch_overhead = false;
      break;
  }
  if (launch_overhead) {
    t.fwd_s += kLaunchOverheadS;
    // Backward launches two kernels for parameterized layers (weight grad
    // and input grad), one otherwise.
    const bool two_kernels = d.kind == core::LayerKind::kConv ||
                             d.kind == core::LayerKind::kInnerProduct;
    t.bwd_s += (two_kernels && !first_conv ? 2.0 : 1.0) * kLaunchOverheadS;
  }
  if (cost.tracer()) trace_layer(cost, d, first_conv, t, conv_est);
  return t;
}

double estimate_net_sw(const hw::CostModel& cost,
                       const std::vector<core::LayerDesc>& descs) {
  return estimate_net_sw(cost, descs, {});
}

double estimate_net_sw(
    const hw::CostModel& cost, const std::vector<core::LayerDesc>& descs,
    const std::map<std::string, ConvEstimate>& conv_overrides) {
  double total = 0.0;
  bool saw_conv = false;
  for (const auto& d : descs) {
    const bool first_conv = d.kind == core::LayerKind::kConv && !saw_conv;
    if (d.kind == core::LayerKind::kConv) saw_conv = true;
    const ConvEstimate* override_est = nullptr;
    if (d.kind == core::LayerKind::kConv && !conv_overrides.empty()) {
      auto it = conv_overrides.find(d.name);
      if (it != conv_overrides.end()) override_est = &it->second;
    }
    total += estimate_layer_sw(cost, d, first_conv, override_est).total();
  }
  return total;
}

NetTimeline estimate_net_timeline(
    const hw::CostModel& cost, const std::vector<core::LayerDesc>& descs,
    const std::map<std::string, ConvEstimate>& conv_overrides) {
  // Mirrors estimate_net_sw layer by layer; total_s accumulates t.total()
  // in the same order so the two stay bit-identical.
  NetTimeline tl;
  tl.fwd_s.reserve(descs.size());
  tl.bwd_s.reserve(descs.size());
  bool saw_conv = false;
  for (const auto& d : descs) {
    const bool first_conv = d.kind == core::LayerKind::kConv && !saw_conv;
    if (d.kind == core::LayerKind::kConv) saw_conv = true;
    const ConvEstimate* override_est = nullptr;
    if (d.kind == core::LayerKind::kConv && !conv_overrides.empty()) {
      auto it = conv_overrides.find(d.name);
      if (it != conv_overrides.end()) override_est = &it->second;
    }
    const LayerTime t = estimate_layer_sw(cost, d, first_conv, override_est);
    tl.fwd_s.push_back(t.fwd_s);
    tl.bwd_s.push_back(t.bwd_s);
    tl.total_s += t.total();
  }
  return tl;
}

double node_throughput_img_s(const hw::CostModel& cost,
                             const std::vector<core::LayerDesc>& descs_quarter,
                             int full_batch) {
  const double t_cg = estimate_net_sw(cost, descs_quarter);
  SWC_CHECK_GT(t_cg, 0.0);
  return full_batch / t_cg;
}

}  // namespace swcaffe::dnn
