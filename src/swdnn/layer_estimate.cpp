#include "swdnn/layer_estimate.h"

#include "base/log.h"
#include "swdnn/conv_plan.h"
#include "swdnn/mem_plans.h"
#include "swgemm/estimate.h"

namespace swcaffe::dnn {

namespace {

double gemm_s(const hw::CostModel& cost, std::int64_t m, std::int64_t n,
              std::int64_t k) {
  return gemm::estimate_gemm(cost, m, n, k).seconds;
}

// Fixed cost of launching one layer pass on the CPE cluster: athread_spawn/
// athread_join plus the MPE-side synchronization shown in Fig. 5 happen for
// EVERY layer in every direction. Calibrated against Table III: it is what
// makes deep small-layer networks (ResNet-50: ~176 layers, GoogleNet: ~140)
// "exhibit stronger memory-bounded properties" than their flop counts alone
// suggest, while being negligible for AlexNet/VGG's two dozen fat layers.
constexpr double kLaunchOverheadS = 3.0e-3;

}  // namespace

LayerTime estimate_layer_sw(const hw::CostModel& cost,
                            const core::LayerDesc& d, bool first_conv) {
  LayerTime t;
  switch (d.kind) {
    case core::LayerKind::kConv: {
      const ConvEstimate est = estimate_conv(cost, d.conv);
      t.fwd_s = est.forward.best();
      t.bwd_s = est.best_bwd(first_conv);
      break;
    }
    case core::LayerKind::kInnerProduct: {
      // fwd: out(m x n) = in(m x k) W^T; bwd: dW(n x k) and dIn(m x k).
      t.fwd_s = gemm_s(cost, d.fc.m, d.fc.n, d.fc.k);
      t.bwd_s = gemm_s(cost, d.fc.n, d.fc.k, d.fc.m) +
                gemm_s(cost, d.fc.m, d.fc.k, d.fc.n);
      break;
    }
    case core::LayerKind::kLSTM: {
      // The recurrence serializes: one fused gate GEMM per time step in each
      // direction, plus BPTT's weight-gradient GEMM (small elementwise gate
      // math folds into bandwidth noise).
      const double step_fwd = gemm_s(cost, d.fc.m, d.fc.n, d.fc.k);
      const double step_bwd = gemm_s(cost, d.fc.n, d.fc.k, d.fc.m) +
                              gemm_s(cost, d.fc.m, d.fc.k, d.fc.n);
      t.fwd_s = d.steps * step_fwd;
      t.bwd_s = d.steps * step_bwd;
      break;
    }
    case core::LayerKind::kPool:
      t.fwd_s = pool_forward_time(cost, d.pool);
      t.bwd_s = pool_backward_time(cost, d.pool);
      break;
    case core::LayerKind::kReLU:
      t.fwd_s = elementwise_time(cost, d.input_count, 2.0);
      t.bwd_s = elementwise_time(cost, d.input_count, 3.0);
      break;
    case core::LayerKind::kSigmoid:
    case core::LayerKind::kTanH:
      // Transcendentals cost an extra evaluation pass on the CPE pipelines.
      t.fwd_s = elementwise_time(cost, d.input_count, 3.0);
      t.bwd_s = elementwise_time(cost, d.input_count, 3.0);
      break;
    case core::LayerKind::kBatchNorm:
      // fwd: mean pass, variance pass, normalize read+write.
      t.fwd_s = elementwise_time(cost, d.input_count, 4.0);
      t.bwd_s = elementwise_time(cost, d.input_count, 5.0);
      break;
    case core::LayerKind::kLRN:
      // cross-channel sums make LRN the heaviest elementwise family.
      t.fwd_s = elementwise_time(cost, d.input_count, 6.0);
      t.bwd_s = elementwise_time(cost, d.input_count, 8.0);
      break;
    case core::LayerKind::kDropout:
      t.fwd_s = elementwise_time(cost, d.input_count, 3.0);
      t.bwd_s = elementwise_time(cost, d.input_count, 3.0);
      break;
    case core::LayerKind::kSoftmax:
    case core::LayerKind::kSoftmaxLoss:
      t.fwd_s = elementwise_time(cost, d.input_count, 4.0);
      t.bwd_s = elementwise_time(cost, d.input_count, 2.0);
      break;
    case core::LayerKind::kEltwise:
      t.fwd_s = elementwise_time(cost, d.input_count, 3.0);
      t.bwd_s = elementwise_time(cost, d.input_count, 2.0);
      break;
    case core::LayerKind::kConcat:
      t.fwd_s = elementwise_time(cost, d.output_count, 2.0);
      t.bwd_s = elementwise_time(cost, d.output_count, 2.0);
      break;
    case core::LayerKind::kTransform: {
      // Inner contiguous run of the (B,N,R,C)->(R,C,N,B) gather is the C
      // (width) axis of the source.
      const int run = d.conv.in_w > 0 ? d.conv.in_w : 64;
      t.fwd_s = transform_time(cost, d.input_count, run);
      t.bwd_s = transform_time(cost, d.input_count, run);
      break;
    }
    case core::LayerKind::kData:
    case core::LayerKind::kAccuracy:
      return t;  // I/O is modelled by swcaffe::io; accuracy is negligible.
  }
  t.fwd_s += kLaunchOverheadS;
  // Backward launches two kernels for parameterized layers (weight grad and
  // input grad), one otherwise.
  const bool two_kernels = d.kind == core::LayerKind::kConv ||
                           d.kind == core::LayerKind::kInnerProduct;
  t.bwd_s += (two_kernels && !first_conv ? 2.0 : 1.0) * kLaunchOverheadS;
  return t;
}

double estimate_net_sw(const hw::CostModel& cost,
                       const std::vector<core::LayerDesc>& descs) {
  double total = 0.0;
  bool saw_conv = false;
  for (const auto& d : descs) {
    const bool first_conv = d.kind == core::LayerKind::kConv && !saw_conv;
    if (d.kind == core::LayerKind::kConv) saw_conv = true;
    total += estimate_layer_sw(cost, d, first_conv).total();
  }
  return total;
}

double node_throughput_img_s(const hw::CostModel& cost,
                             const std::vector<core::LayerDesc>& descs_quarter,
                             int full_batch) {
  const double t_cg = estimate_net_sw(cost, descs_quarter);
  SWC_CHECK_GT(t_cg, 0.0);
  return full_batch / t_cg;
}

}  // namespace swcaffe::dnn
