#include "swdnn/im2col.h"

#include <cstring>

#include "base/log.h"

namespace swcaffe::dnn {

void im2col(const float* img, const core::ConvGeom& g, float* col) {
  const int oh = g.out_h(), ow = g.out_w();
  SWC_CHECK_GT(oh, 0);
  SWC_CHECK_GT(ow, 0);
  std::size_t idx = 0;
  for (int c = 0; c < g.in_c; ++c) {
    const float* plane = img + static_cast<std::size_t>(c) * g.in_h * g.in_w;
    for (int kh = 0; kh < g.kernel; ++kh) {
      for (int kw = 0; kw < g.kernel; ++kw) {
        for (int y = 0; y < oh; ++y) {
          const int src_y = y * g.stride + kh - g.pad;
          if (src_y < 0 || src_y >= g.in_h) {
            for (int x = 0; x < ow; ++x) col[idx++] = 0.0f;
            continue;
          }
          const float* row = plane + static_cast<std::size_t>(src_y) * g.in_w;
          for (int x = 0; x < ow; ++x) {
            const int src_x = x * g.stride + kw - g.pad;
            col[idx++] =
                (src_x < 0 || src_x >= g.in_w) ? 0.0f : row[src_x];
          }
        }
      }
    }
  }
}

void col2im(const float* col, const core::ConvGeom& g, float* img) {
  const int oh = g.out_h(), ow = g.out_w();
  std::size_t idx = 0;
  for (int c = 0; c < g.in_c; ++c) {
    float* plane = img + static_cast<std::size_t>(c) * g.in_h * g.in_w;
    for (int kh = 0; kh < g.kernel; ++kh) {
      for (int kw = 0; kw < g.kernel; ++kw) {
        for (int y = 0; y < oh; ++y) {
          const int src_y = y * g.stride + kh - g.pad;
          if (src_y < 0 || src_y >= g.in_h) {
            idx += ow;
            continue;
          }
          float* row = plane + static_cast<std::size_t>(src_y) * g.in_w;
          for (int x = 0; x < ow; ++x, ++idx) {
            const int src_x = x * g.stride + kw - g.pad;
            if (src_x >= 0 && src_x < g.in_w) row[src_x] += col[idx];
          }
        }
      }
    }
  }
}

}  // namespace swcaffe::dnn
