// Functional simulation of the swDNN implicit (direct) convolution kernel
// on the 8x8 CPE mesh model (paper Sec. IV-B2 / Fang et al. IPDPS'17).
//
// Work decomposition:
//   * mesh ROW i owns input-channel group i  (Ni / 8 channels),
//   * mesh COLUMN j owns output-channel group j (No / 8 channels),
//   * CPE(i,j) keeps the W[out group j][in group i] filter block resident in
//     its LDM (loaded from memory exactly once),
//   * per output row: the leader CPE of each mesh row DMAs the K needed
//     input rows of its channel group and BROADCASTS them along the row
//     (register-level communication), every CPE computes partial sums for
//     its (in-group, out-group) block, and partials are REDUCED down each
//     column to the row-0 CPE, which converts and DMA-puts the output row.
//
// This moves real data through the Ldm / RlcFabric / DmaEngine models, so
// it is testable against the host convolution and its TrafficLedger is
// testable against the analytic implicit-conv plan (input read K times,
// output and weights once — the plan conv_plan.cpp's estimate assumes).
#pragma once

#include <span>

#include "core/layer_desc.h"
#include "hw/chip.h"
#include "hw/cost_model.h"

namespace swcaffe::dnn {

/// Runs the forward convolution on the core-group model. Requires in_c and
/// out_c divisible by the mesh dimension (8) — the same register-blocking
/// constraint that makes the real kernel reject narrow channels. `bias`
/// may be null.
hw::TrafficLedger implicit_conv_forward_sim(hw::CoreGroup& cg,
                                            const core::ConvGeom& g,
                                            std::span<const float> bottom,
                                            std::span<const float> weight,
                                            const float* bias,
                                            std::span<float> top);

}  // namespace swcaffe::dnn
