#include "swdnn/conv_plan.h"

#include <algorithm>
#include <cmath>

#include "base/log.h"
#include "swgemm/estimate.h"

namespace swcaffe::dnn {

namespace {

// Calibration constants fitted once against Table II (see EXPERIMENTS.md for
// the paper-vs-model comparison). They encode measured kernel behaviour the
// first-principles model cannot derive:
//  * im2col/col2im writes are an irregular scatter; the measured effective
//    bandwidth cap is far below streaming DMA.
//  * per-image kernel launch/setup overhead of the explicit plan.
//  * GEMMs with narrow N cannot fill the 256-bit pipelines.
//  * the implicit kernel's efficiency saturates with channel width
//    (Sec. IV-B2: "performance would largely degrade" under 64 channels).
constexpr double kIm2colScatterBw = 3.8e9;
// col2im is a scatter-ACCUMULATE: every image location is read, added to and
// written back, roughly halving the effective rate again (Table II's in-diff
// column: explicit backward costs ~2x its forward).
constexpr double kCol2imScatterBw = 2.0e9;
constexpr double kExplicitPerImageOverheadS = 0.5e-3;
constexpr double kGemmNarrowN = 512.0;
// GEMMs with a short reduction axis cannot keep the FMA pipelines fed from
// LDM (k-direction register blocking starves); quadratic derating calibrated
// to conv1_1's measured 5.3 Gflops (Table II).
constexpr double kGemmNarrowK = 256.0;
constexpr double kImplicitEffMax = 0.42;
constexpr double kImplicitEffHalfChannel = 70.0;
// Implicit kernel applicability (the dash pattern of Table II): the forward
// kernel needs at least a register-block of input channels; both backward
// kernels additionally need wide channel dims on both sides.
constexpr int kImplicitFwdMinInC = 8;
constexpr int kImplicitBwdMinCh = 128;

/// Blocked mesh GEMM time at a candidate blocking with the narrow-N /
/// narrow-K compute deratings applied on top of the analytic estimate.
double gemm_time(const hw::CostModel& cost, std::int64_t m, std::int64_t n,
                 std::int64_t k, const gemm::GemmBlocking& blocking) {
  gemm::GemmEstimate est = gemm::estimate_gemm_blocked(cost, m, n, k, blocking);
  const double util_n = std::min(1.0, static_cast<double>(n) / kGemmNarrowN);
  const double util_k = std::min(1.0, static_cast<double>(k) / kGemmNarrowK);
  const double compute =
      est.compute_seconds / std::max(util_n * util_k * util_k, 1e-3);
  // Re-run the estimator's overlap arithmetic with the derated compute stream
  // (launch overhead is whatever est.seconds charged beyond the streams).
  const double streams =
      blocking.double_buffered
          ? std::max(est.compute_seconds, est.dma_seconds)
          : est.compute_seconds + est.dma_seconds;
  const double launch_s = est.seconds - streams;
  const double derated = blocking.double_buffered
                             ? std::max(compute, est.dma_seconds)
                             : compute + est.dma_seconds;
  return derated + launch_s;
}

/// Bytes of the column matrix for one image.
double col_bytes(const core::ConvGeom& g) {
  return 4.0 * g.in_c * g.kernel * g.kernel * g.out_h() * g.out_w();
}

double image_bytes(const core::ConvGeom& g) {
  return 4.0 * g.in_c * g.in_h * g.in_w;
}

/// Effective bandwidth of the Fig. 4 transformation plan: strided DMA over
/// out_w-long runs, capped by the measured scatter ceiling.
double transform_bw(const hw::CostModel& cost, const core::ConvGeom& g) {
  const std::size_t run = static_cast<std::size_t>(std::max(g.out_w(), 1)) * 4;
  const double strided = cost.dma_strided_bandwidth(
      32 * 1024, run, cost.params().mesh_size());
  return std::min(strided, kIm2colScatterBw);
}

double implicit_efficiency(const core::ConvGeom& g) {
  const double ch =
      0.5 * (std::min(g.in_c, 512) + std::min(g.out_c, 512));
  return kImplicitEffMax * ch / (ch + kImplicitEffHalfChannel);
}

/// Implicit plan time for one direction given its flop count. The kernel is
/// compute-bound at the channel-dependent efficiency; its DMA (input slab
/// re-read once per kernel row, output once) only matters for tiny layers.
double implicit_time(const hw::CostModel& cost, const core::ConvGeom& g,
                     double flops) {
  const double eff = implicit_efficiency(g);
  const double compute =
      flops / (cost.params().cpe_cluster_flops * eff);
  const double out_bytes =
      4.0 * g.out_c * static_cast<double>(g.out_h()) * g.out_w();
  const double dma_bytes =
      (image_bytes(g) * g.kernel + out_bytes) * g.batch +
      4.0 * g.weight_count();
  const double bw = cost.dma_bandwidth(32 * 1024, cost.params().mesh_size());
  return std::max(compute, dma_bytes / bw);
}

}  // namespace

bool implicit_forward_supported(const core::ConvGeom& g) {
  return g.in_c >= kImplicitFwdMinInC;
}

bool implicit_backward_supported(const core::ConvGeom& g) {
  return std::min(g.in_c, g.out_c) >= kImplicitBwdMinCh;
}

double im2col_time(const hw::CostModel& cost, const core::ConvGeom& g) {
  // Per image: read every input row once, write the K*K-replicated column
  // matrix (Fig. 4, left).
  const double bytes = image_bytes(g) + col_bytes(g);
  return g.batch * bytes / transform_bw(cost, g);
}

double col2im_time(const hw::CostModel& cost, const core::ConvGeom& g) {
  // Reverse movement: read the column matrix, accumulate into the image
  // (read-modify-write, hence the lower scatter ceiling).
  const double bytes = col_bytes(g) + image_bytes(g);
  const double bw = std::min(transform_bw(cost, g), kCol2imScatterBw);
  return g.batch * bytes / bw;
}

ConvGemmShape explicit_gemm_shape(const core::ConvGeom& g, ConvDirection dir) {
  const std::int64_t spatial =
      static_cast<std::int64_t>(g.out_h()) * g.out_w();
  const std::int64_t kdim =
      static_cast<std::int64_t>(g.in_c) * g.kernel * g.kernel;
  switch (dir) {
    case ConvDirection::kForward:
      return {g.out_c, spatial, kdim};
    case ConvDirection::kBackwardWeight:
      return {g.out_c, kdim, spatial};
    case ConvDirection::kBackwardInput:
      return {kdim, spatial, g.out_c};
  }
  return {};
}

gemm::GemmBlocking default_conv_gemm_blocking(std::int64_t m, std::int64_t n,
                                              std::int64_t k) {
  (void)m;
  (void)k;
  gemm::GemmBlocking b;
  // swtune found the square 256^3 panel strictly dominated whenever the
  // inner dimension exceeds one panel: widening the N-edge to 512 halves
  // both the A-panel re-reads (a_bytes scales with ceil(n/block_n)) and the
  // per-panel launch count, and doubles the per-CPE run length of the B/C
  // streams — while 256x512x256 double-buffered still fills the 64 KB LDM
  // exactly (16+32+16 KB). On VGG-16 conv3_1 forward (m=256, n=3136,
  // k=2304) this is the plan the tuner converges to; see EXPERIMENTS.md.
  if (n > 256) b.block_n = 512;
  return b;
}

double explicit_conv_time(const hw::CostModel& cost, const core::ConvGeom& g,
                          ConvDirection dir,
                          const gemm::GemmBlocking* blocking) {
  SWC_CHECK_EQ(g.group, 1);
  SWC_CHECK_GT(g.batch, 0);
  SWC_CHECK_GT(g.out_h(), 0);
  SWC_CHECK_GT(g.out_w(), 0);
  const ConvGemmShape s = explicit_gemm_shape(g, dir);
  const gemm::GemmBlocking b =
      blocking ? *blocking : default_conv_gemm_blocking(s.m, s.n, s.k);
  const double overhead = g.batch * kExplicitPerImageOverheadS;
  const double gemm_s = g.batch * gemm_time(cost, s.m, s.n, s.k, b);
  switch (dir) {
    case ConvDirection::kForward:
    case ConvDirection::kBackwardWeight:
      // im2col feeds both the forward product and the weight-gradient.
      return im2col_time(cost, g) + gemm_s + overhead;
    case ConvDirection::kBackwardInput:
      // col(kdim x OhOw) = W^T * dTop, then scatter-accumulate back.
      return gemm_s + col2im_time(cost, g) + overhead;
  }
  return 0.0;
}

double implicit_conv_time(const hw::CostModel& cost, const core::ConvGeom& g,
                          ConvDirection dir) {
  SWC_CHECK_EQ(g.group, 1);
  switch (dir) {
    case ConvDirection::kForward:
      if (!implicit_forward_supported(g)) return -1.0;
      return implicit_time(cost, g, g.flops_fwd());
    case ConvDirection::kBackwardWeight:
      if (!implicit_backward_supported(g)) return -1.0;
      return implicit_time(cost, g, g.flops_bwd_weight());
    case ConvDirection::kBackwardInput:
      if (!implicit_backward_supported(g)) return -1.0;
      return implicit_time(cost, g, g.flops_bwd_input());
  }
  return -1.0;
}

ConvEstimate estimate_conv(const hw::CostModel& cost,
                           const core::ConvGeom& g) {
  SWC_CHECK_GT(g.batch, 0);
  SWC_CHECK_GT(g.out_h(), 0);
  SWC_CHECK_GT(g.out_w(), 0);
  if (g.group > 1) {
    // Groups execute sequentially, each over its channel slice; the narrow
    // per-group channels also drive the implicit kernel's applicability.
    ConvEstimate est = estimate_conv(cost, g.per_group());
    auto scale = [&](ConvDirectionEstimate& d) {
      d.explicit_s *= g.group;
      if (d.implicit_ok()) d.implicit_s *= g.group;
    };
    scale(est.forward);
    scale(est.backward_weight);
    scale(est.backward_input);
    est.gflops_fwd = g.flops_fwd() / est.forward.best() / 1e9;
    est.gflops_bwd_weight =
        g.flops_bwd_weight() / est.backward_weight.best() / 1e9;
    est.gflops_bwd_input =
        g.flops_bwd_input() / est.backward_input.best() / 1e9;
    return est;
  }
  ConvEstimate est;

  // --- Explicit plan (Sec. IV-B1) -------------------------------------------
  est.forward.explicit_s =
      explicit_conv_time(cost, g, ConvDirection::kForward);
  est.backward_weight.explicit_s =
      explicit_conv_time(cost, g, ConvDirection::kBackwardWeight);
  est.backward_input.explicit_s =
      explicit_conv_time(cost, g, ConvDirection::kBackwardInput);

  // --- Implicit plan (Sec. IV-B2) -------------------------------------------
  est.forward.implicit_s =
      implicit_conv_time(cost, g, ConvDirection::kForward);
  est.backward_weight.implicit_s =
      implicit_conv_time(cost, g, ConvDirection::kBackwardWeight);
  est.backward_input.implicit_s =
      implicit_conv_time(cost, g, ConvDirection::kBackwardInput);

  est.gflops_fwd = g.flops_fwd() / est.forward.best() / 1e9;
  est.gflops_bwd_weight =
      g.flops_bwd_weight() / est.backward_weight.best() / 1e9;
  est.gflops_bwd_input =
      g.flops_bwd_input() / est.backward_input.best() / 1e9;
  return est;
}

}  // namespace swcaffe::dnn
