// im2col / col2im: the explicit GEMM transformation of convolution (paper
// Sec. IV-B1, Fig. 4). Functional host implementation used by the explicit
// convolution path; the corresponding SW26010 DMA plan is costed in
// conv_plan.h.
#pragma once

#include "core/layer_desc.h"

namespace swcaffe::dnn {

/// Expands one image (in_c, in_h, in_w) into the column matrix
/// (in_c*K*K, out_h*out_w), row-major, applying zero padding implicitly.
void im2col(const float* img, const core::ConvGeom& g, float* col);

/// Accumulates the column matrix back into the (zero-initialized by caller)
/// image gradient; the exact reverse data movement of im2col.
void col2im(const float* col, const core::ConvGeom& g, float* img);

}  // namespace swcaffe::dnn
