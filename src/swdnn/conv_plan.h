// SW26010 timing plans for convolutional layers (paper Sec. IV-B, Table II).
//
// Two strategies:
//  * explicit: im2col (DMA plan of Fig. 4) + blocked mesh GEMM + col2im in
//    the backward passes. Always applicable; pays the transformation
//    traffic, which dominates for large images.
//  * implicit: direct blocked convolution in the (R,C,N,B) layout — no
//    im2col traffic, long contiguous DMA runs along the channel*batch axis,
//    but the register/SIMD blocking needs wide channel dimensions:
//    performance "largely degrades" below 64 channels and the backward
//    kernels require both channel dims >= 128 (the dash pattern of
//    Table II).
// estimate_conv() returns both strategies plus the auto-tuned best, which is
// what the conv layer and the whole-net estimators consume.
#pragma once

#include "core/layer_desc.h"
#include "hw/cost_model.h"
#include "swgemm/estimate.h"

namespace swcaffe::dnn {

/// The three passes a conv layer runs per iteration (Table II's columns).
enum class ConvDirection { kForward, kBackwardWeight, kBackwardInput };

/// One direction's timing under both strategies. A negative value means the
/// strategy cannot run this configuration (rendered as "-" in Table II).
struct ConvDirectionEstimate {
  double explicit_s = -1.0;
  double implicit_s = -1.0;

  bool implicit_ok() const { return implicit_s >= 0.0; }
  /// Best available time (explicit is always available).
  double best() const {
    return implicit_ok() ? std::min(explicit_s, implicit_s) : explicit_s;
  }
  bool implicit_wins() const { return implicit_ok() && implicit_s < explicit_s; }
};

struct ConvEstimate {
  ConvDirectionEstimate forward;
  ConvDirectionEstimate backward_weight;
  ConvDirectionEstimate backward_input;

  /// Achieved Gflops of the best forward plan (Table II's Gflops column).
  double gflops_fwd = 0.0;
  double gflops_bwd_weight = 0.0;
  double gflops_bwd_input = 0.0;

  /// Best total backward time; `first_layer` drops the input-gradient pass
  /// (Table II's "NA" for conv1_1).
  double best_bwd(bool first_layer = false) const {
    return backward_weight.best() +
           (first_layer ? 0.0 : backward_input.best());
  }
};

/// Whether the implicit kernel supports the given geometry per direction.
bool implicit_forward_supported(const core::ConvGeom& g);
bool implicit_backward_supported(const core::ConvGeom& g);

/// GEMM problem of the explicit (im2col) plan in one direction, for a
/// per-group geometry: forward C(No x OhOw) = W * col, weight-grad
/// dW(No x kdim) = dTop * col^T, input-grad col(kdim x OhOw) = W^T * dTop.
struct ConvGemmShape {
  std::int64_t m = 0;
  std::int64_t n = 0;
  std::int64_t k = 0;
};
ConvGemmShape explicit_gemm_shape(const core::ConvGeom& g, ConvDirection dir);

/// The hand-written default blocking estimate_conv prices for an explicit
/// conv GEMM of shape (m, n, k). This is the baseline swtune must beat; when
/// the tuner proves a shape class strictly dominated, the fix lands here.
gemm::GemmBlocking default_conv_gemm_blocking(std::int64_t m, std::int64_t n,
                                              std::int64_t k);

/// Explicit-plan time for one direction of a group==1 convolution, including
/// the im2col/col2im transformation and per-image overhead. `blocking`
/// overrides the GEMM blocking (nullptr = default_conv_gemm_blocking); the
/// caller is responsible for having verified a non-default blocking legal.
double explicit_conv_time(const hw::CostModel& cost, const core::ConvGeom& g,
                          ConvDirection dir,
                          const gemm::GemmBlocking* blocking = nullptr);

/// Implicit-plan time for one direction of a group==1 convolution, or -1
/// when the kernel does not support the geometry (Table II's "-").
double implicit_conv_time(const hw::CostModel& cost, const core::ConvGeom& g,
                          ConvDirection dir);

/// Full per-strategy estimate for one conv layer on one core group.
ConvEstimate estimate_conv(const hw::CostModel& cost, const core::ConvGeom& g);

/// im2col / col2im DMA time for the whole batch (Fig. 4 plan; exposed
/// separately for tests and the transformation-overhead ablation).
double im2col_time(const hw::CostModel& cost, const core::ConvGeom& g);
double col2im_time(const hw::CostModel& cost, const core::ConvGeom& g);

}  // namespace swcaffe::dnn
