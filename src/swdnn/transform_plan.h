// Layout-transform planning (paper Sec. IV-C).
//
// The implicit convolution kernel wants the (R,C,N,B) layout while
// everything else uses Caffe's (B,N,R,C); swCaffe inserts tensor
// transformation layers at layout boundaries and "the convolutional layers
// that can be accelerated with implicit transformation are gathered
// together" so one transform pair serves a whole run. This pass decides,
// for a net description, which convolutions run implicit and where the
// transform layers go, and prices the gathered plan against the naive
// per-layer alternative.
#pragma once

#include <vector>

#include "core/layer_desc.h"
#include "hw/cost_model.h"

namespace swcaffe::dnn {

/// Layers that read/write elementwise and therefore work in either layout,
/// so they do not break an implicit run.
bool layout_agnostic(core::LayerKind kind);

struct TransformPlan {
  /// Per input-desc flag: does this layer execute in the RCNB layout?
  std::vector<bool> rcnb;
  /// Number of transform layers the gathered plan inserts.
  int gathered_transforms = 0;
  /// Number the naive plan would insert (2 per implicit conv).
  int per_layer_transforms = 0;
  /// Simulated seconds of transform work (fwd+bwd) under each plan.
  double gathered_transform_s = 0.0;
  double per_layer_transform_s = 0.0;
  /// Whole-net iteration seconds: layers + transforms.
  double gathered_total_s = 0.0;
  double per_layer_total_s = 0.0;
  /// Hypothetical all-explicit net (no transforms at all), for reference.
  double all_explicit_total_s = 0.0;
};

/// Builds the plan for one core group's net description.
TransformPlan plan_layout_transforms(const hw::CostModel& cost,
                                     const std::vector<core::LayerDesc>& descs);

}  // namespace swcaffe::dnn
