// Functional simulation of the Fig. 4 im2col DMA plan on the core-group
// model: each CPE DMA-gets one input image row into its LDM, applies the
// zero padding, and DMA-puts the K*K replicated lines into the column
// matrix. Validated against the host im2col and used to check the ledger
// assumptions behind conv_plan's explicit-path estimate (every input row
// read once, every column element written once).
#pragma once

#include <span>

#include "core/layer_desc.h"
#include "hw/chip.h"
#include "hw/cost_model.h"

namespace swcaffe::dnn {

/// Expands one image (in_c, in_h, in_w) into the (in_c*K*K, out_h*out_w)
/// column matrix through the DMA model. Returns the traffic ledger.
hw::TrafficLedger im2col_sim(hw::CoreGroup& cg, const core::ConvGeom& g,
                             std::span<const float> img,
                             std::span<float> col);

/// The reverse movement (Fig. 4 right): reads the column matrix line by
/// line and accumulates into the (caller-zeroed) image gradient — a
/// read-modify-write scatter, which is why the cost model prices col2im
/// below im2col's streaming rate.
hw::TrafficLedger col2im_sim(hw::CoreGroup& cg, const core::ConvGeom& g,
                             std::span<const float> col,
                             std::span<float> img);

}  // namespace swcaffe::dnn
