#include "swdnn/transform_plan.h"

#include <algorithm>

#include "base/log.h"
#include "swdnn/conv_plan.h"
#include "swdnn/layer_estimate.h"
#include "swdnn/mem_plans.h"

namespace swcaffe::dnn {

bool layout_agnostic(core::LayerKind kind) {
  switch (kind) {
    case core::LayerKind::kReLU:
    case core::LayerKind::kBatchNorm:
    case core::LayerKind::kDropout:
    case core::LayerKind::kEltwise:
      return true;
    default:
      return false;
  }
}

namespace {

/// Transform cost (fwd + bwd) at a layout boundary carrying `count` floats
/// with `inner_run`-element contiguous gather runs.
double boundary_cost(const hw::CostModel& cost, std::int64_t count,
                     int inner_run) {
  return 2.0 * transform_time(cost, count, std::max(inner_run, 1));
}

}  // namespace

TransformPlan plan_layout_transforms(
    const hw::CostModel& cost, const std::vector<core::LayerDesc>& descs) {
  TransformPlan plan;
  plan.rcnb.assign(descs.size(), false);

  // Phase 1: per-conv strategy from the cost model; mark implicit convs and
  // the layout-agnostic layers between them as RCNB-eligible.
  std::vector<bool> wants_rcnb(descs.size(), false);
  bool saw_conv = false;
  for (std::size_t i = 0; i < descs.size(); ++i) {
    const auto& d = descs[i];
    if (d.kind == core::LayerKind::kConv) {
      const bool first = !saw_conv;
      saw_conv = true;
      (void)first;
      const ConvEstimate est = estimate_conv(cost, d.conv);
      wants_rcnb[i] = est.forward.implicit_wins();
    }
  }
  // Phase 2: grow runs through layout-agnostic layers — a run of implicit
  // convs separated only by elementwise layers shares one transform pair.
  plan.rcnb = wants_rcnb;
  for (std::size_t i = 0; i < descs.size(); ++i) {
    if (!layout_agnostic(descs[i].kind)) continue;
    const bool prev_rcnb = i > 0 && plan.rcnb[i - 1];
    // Look ahead to the next non-agnostic layer.
    std::size_t j = i + 1;
    while (j < descs.size() && layout_agnostic(descs[j].kind)) ++j;
    const bool next_rcnb = j < descs.size() && wants_rcnb[j];
    if (prev_rcnb && next_rcnb) plan.rcnb[i] = true;
  }

  // Phase 3: count boundaries and price the plans.
  double layer_total = 0.0, all_explicit = 0.0;
  saw_conv = false;
  for (std::size_t i = 0; i < descs.size(); ++i) {
    const auto& d = descs[i];
    const bool first = d.kind == core::LayerKind::kConv && !saw_conv;
    if (d.kind == core::LayerKind::kConv) saw_conv = true;
    layer_total += estimate_layer_sw(cost, d, first).total();
    if (d.kind == core::LayerKind::kConv) {
      const ConvEstimate est = estimate_conv(cost, d.conv);
      all_explicit += est.forward.explicit_s + est.backward_weight.explicit_s +
                      (first ? 0.0 : est.backward_input.explicit_s);
      if (wants_rcnb[i]) {
        plan.per_layer_transforms += 2;
        plan.per_layer_transform_s +=
            boundary_cost(cost, d.input_count, d.conv.in_w) +
            boundary_cost(cost, d.output_count, d.conv.out_w());
      }
    } else {
      all_explicit += estimate_layer_sw(cost, d, false).total();
    }
  }
  bool in_rcnb = false;
  for (std::size_t i = 0; i < descs.size(); ++i) {
    if (plan.rcnb[i] && !in_rcnb) {
      ++plan.gathered_transforms;
      plan.gathered_transform_s +=
          boundary_cost(cost, descs[i].input_count,
                        descs[i].kind == core::LayerKind::kConv
                            ? descs[i].conv.in_w
                            : 64);
      in_rcnb = true;
    } else if (!plan.rcnb[i] && in_rcnb) {
      ++plan.gathered_transforms;
      plan.gathered_transform_s +=
          boundary_cost(cost, descs[i].input_count, 64);
      in_rcnb = false;
    }
  }
  if (in_rcnb) {
    ++plan.gathered_transforms;
    plan.gathered_transform_s +=
        boundary_cost(cost, descs.back().output_count, 64);
  }

  plan.gathered_total_s = layer_total + plan.gathered_transform_s;
  plan.per_layer_total_s = layer_total + plan.per_layer_transform_s;
  plan.all_explicit_total_s = all_explicit;
  return plan;
}

}  // namespace swcaffe::dnn
