#include "swdnn/conv_func.h"

#include <algorithm>
#include <vector>

#include "base/log.h"
#include "swdnn/im2col.h"
#include "swgemm/reference.h"

namespace swcaffe::dnn {

namespace {

std::size_t col_count(const core::ConvGeom& g) {
  return static_cast<std::size_t>(g.in_c) * g.kernel * g.kernel * g.out_h() *
         g.out_w();
}

/// Scratch column buffer reused across calls when the caller passes none.
float* scratch_col(const core::ConvGeom& g, float* user_buf,
                   std::vector<float>& local) {
  if (user_buf != nullptr) return user_buf;
  local.resize(col_count(g));
  return local.data();
}

/// Grouped convolutions recurse: each (image, group) pair is a batch-1
/// single-group convolution over contiguous channel slices.
struct GroupView {
  core::ConvGeom sub;           // per-group geometry, batch = 1
  std::size_t in_stride;        // one group's input floats
  std::size_t out_stride;       // one group's output floats
  std::size_t w_stride;         // one group's weight floats
  std::size_t in_img, out_img;  // full-image strides
};

GroupView group_view(const core::ConvGeom& g) {
  SWC_CHECK_GT(g.group, 0);
  SWC_CHECK_EQ(g.in_c % g.group, 0);
  SWC_CHECK_EQ(g.out_c % g.group, 0);
  GroupView v;
  v.sub = g.per_group();
  v.sub.batch = 1;
  v.in_stride = static_cast<std::size_t>(v.sub.in_c) * g.in_h * g.in_w;
  v.out_stride = static_cast<std::size_t>(v.sub.out_c) * g.out_h() * g.out_w();
  v.w_stride = static_cast<std::size_t>(v.sub.out_c) * v.sub.in_c * g.kernel *
               g.kernel;
  v.in_img = v.in_stride * g.group;
  v.out_img = v.out_stride * g.group;
  return v;
}

}  // namespace

void conv_forward_explicit(const core::ConvGeom& g, const float* bottom,
                           const float* weight, const float* bias, float* top,
                           float* col_buf) {
  if (g.group > 1) {
    const GroupView v = group_view(g);
    for (int b = 0; b < g.batch; ++b) {
      for (int gp = 0; gp < g.group; ++gp) {
        conv_forward_explicit(
            v.sub, bottom + b * v.in_img + gp * v.in_stride,
            weight + gp * v.w_stride,
            bias != nullptr ? bias + gp * v.sub.out_c : nullptr,
            top + b * v.out_img + gp * v.out_stride, col_buf);
      }
    }
    return;
  }
  std::vector<float> local;
  float* col = scratch_col(g, col_buf, local);
  const int oh = g.out_h(), ow = g.out_w();
  const std::size_t in_img = static_cast<std::size_t>(g.in_c) * g.in_h * g.in_w;
  const std::size_t out_img = static_cast<std::size_t>(g.out_c) * oh * ow;
  const int kdim = g.in_c * g.kernel * g.kernel;
  for (int b = 0; b < g.batch; ++b) {
    im2col(bottom + b * in_img, g, col);
    // (No x kdim) * (kdim x oh*ow) -> (No x oh*ow)
    gemm::sgemm(false, false, g.out_c, oh * ow, kdim, 1.0f, weight, col, 0.0f,
                top + b * out_img);
    if (bias != nullptr) {
      for (int c = 0; c < g.out_c; ++c) {
        float* plane = top + b * out_img + static_cast<std::size_t>(c) * oh * ow;
        for (int i = 0; i < oh * ow; ++i) plane[i] += bias[c];
      }
    }
  }
}

void conv_forward_implicit(const core::ConvGeom& g, const float* bottom,
                           const float* weight, const float* bias, float* top) {
  if (g.group > 1) {
    const GroupView v = group_view(g);
    for (int b = 0; b < g.batch; ++b) {
      for (int gp = 0; gp < g.group; ++gp) {
        conv_forward_implicit(
            v.sub, bottom + b * v.in_img + gp * v.in_stride,
            weight + gp * v.w_stride,
            bias != nullptr ? bias + gp * v.sub.out_c : nullptr,
            top + b * v.out_img + gp * v.out_stride);
      }
    }
    return;
  }
  const int oh = g.out_h(), ow = g.out_w();
  const std::size_t in_img = static_cast<std::size_t>(g.in_c) * g.in_h * g.in_w;
  const std::size_t out_img = static_cast<std::size_t>(g.out_c) * oh * ow;
  std::fill(top, top + static_cast<std::size_t>(g.batch) * out_img, 0.0f);
  for (int b = 0; b < g.batch; ++b) {
    const float* in = bottom + b * in_img;
    float* out = top + b * out_img;
    for (int no = 0; no < g.out_c; ++no) {
      float* oplane = out + static_cast<std::size_t>(no) * oh * ow;
      for (int ni = 0; ni < g.in_c; ++ni) {
        const float* iplane = in + static_cast<std::size_t>(ni) * g.in_h * g.in_w;
        const float* w = weight + ((static_cast<std::size_t>(no) * g.in_c + ni) *
                                   g.kernel * g.kernel);
        for (int kh = 0; kh < g.kernel; ++kh) {
          for (int kw = 0; kw < g.kernel; ++kw) {
            const float wv = w[kh * g.kernel + kw];
            if (wv == 0.0f) continue;
            // Coordinate-mapped padding (Sec. IV-B2): clip the output range
            // so no explicitly padded input is ever touched.
            for (int y = 0; y < oh; ++y) {
              const int sy = y * g.stride + kh - g.pad;
              if (sy < 0 || sy >= g.in_h) continue;
              const float* irow = iplane + static_cast<std::size_t>(sy) * g.in_w;
              float* orow = oplane + static_cast<std::size_t>(y) * ow;
              for (int x = 0; x < ow; ++x) {
                const int sx = x * g.stride + kw - g.pad;
                if (sx < 0 || sx >= g.in_w) continue;
                orow[x] += wv * irow[sx];
              }
            }
          }
        }
      }
      if (bias != nullptr) {
        for (int i = 0; i < oh * ow; ++i) oplane[i] += bias[no];
      }
    }
  }
}

void conv_backward_weight(const core::ConvGeom& g, const float* bottom,
                          const float* top_diff, float* weight_diff,
                          float* bias_diff, float* col_buf) {
  if (g.group > 1) {
    const GroupView v = group_view(g);
    for (int b = 0; b < g.batch; ++b) {
      for (int gp = 0; gp < g.group; ++gp) {
        conv_backward_weight(
            v.sub, bottom + b * v.in_img + gp * v.in_stride,
            top_diff + b * v.out_img + gp * v.out_stride,
            weight_diff + gp * v.w_stride,
            bias_diff != nullptr ? bias_diff + gp * v.sub.out_c : nullptr,
            col_buf);
      }
    }
    return;
  }
  std::vector<float> local;
  float* col = scratch_col(g, col_buf, local);
  const int oh = g.out_h(), ow = g.out_w();
  const std::size_t in_img = static_cast<std::size_t>(g.in_c) * g.in_h * g.in_w;
  const std::size_t out_img = static_cast<std::size_t>(g.out_c) * oh * ow;
  const int kdim = g.in_c * g.kernel * g.kernel;
  for (int b = 0; b < g.batch; ++b) {
    im2col(bottom + b * in_img, g, col);
    // dW (No x kdim) += top_diff (No x oh*ow) * col^T (oh*ow x kdim)
    gemm::sgemm(false, true, g.out_c, kdim, oh * ow, 1.0f,
                top_diff + b * out_img, col, 1.0f, weight_diff);
    if (bias_diff != nullptr) {
      for (int c = 0; c < g.out_c; ++c) {
        const float* plane =
            top_diff + b * out_img + static_cast<std::size_t>(c) * oh * ow;
        float acc = 0.0f;
        for (int i = 0; i < oh * ow; ++i) acc += plane[i];
        bias_diff[c] += acc;
      }
    }
  }
}

void conv_backward_input(const core::ConvGeom& g, const float* weight,
                         const float* top_diff, float* bottom_diff,
                         float* col_buf) {
  if (g.group > 1) {
    const GroupView v = group_view(g);
    for (int b = 0; b < g.batch; ++b) {
      for (int gp = 0; gp < g.group; ++gp) {
        conv_backward_input(v.sub, weight + gp * v.w_stride,
                            top_diff + b * v.out_img + gp * v.out_stride,
                            bottom_diff + b * v.in_img + gp * v.in_stride,
                            col_buf);
      }
    }
    return;
  }
  std::vector<float> local;
  float* col = scratch_col(g, col_buf, local);
  const int oh = g.out_h(), ow = g.out_w();
  const std::size_t in_img = static_cast<std::size_t>(g.in_c) * g.in_h * g.in_w;
  const std::size_t out_img = static_cast<std::size_t>(g.out_c) * oh * ow;
  const int kdim = g.in_c * g.kernel * g.kernel;
  std::fill(bottom_diff,
            bottom_diff + static_cast<std::size_t>(g.batch) * in_img, 0.0f);
  for (int b = 0; b < g.batch; ++b) {
    // col (kdim x oh*ow) = W^T (kdim x No) * top_diff (No x oh*ow)
    gemm::sgemm(true, false, kdim, oh * ow, g.out_c, 1.0f, weight,
                top_diff + b * out_img, 0.0f, col);
    col2im(col, g, bottom_diff + b * in_img);
  }
}

}  // namespace swcaffe::dnn
