// LayerDesc -> SW26010 time dispatch: the per-layer simulated times of one
// core group, used for Figs. 8/9, Table II/III and the scalability model.
#pragma once

#include <vector>

#include "core/layer_desc.h"
#include "hw/cost_model.h"

namespace swcaffe::dnn {

struct LayerTime {
  double fwd_s = 0.0;
  double bwd_s = 0.0;
  double total() const { return fwd_s + bwd_s; }
};

/// Simulated forward/backward time of one layer on ONE core group at the
/// batch size baked into the descriptor. `first_conv` drops the
/// input-gradient pass of the first convolution (no propagation to data).
LayerTime estimate_layer_sw(const hw::CostModel& cost,
                            const core::LayerDesc& desc,
                            bool first_conv = false);

/// Whole-net iteration time on one core group (sum of layer times).
double estimate_net_sw(const hw::CostModel& cost,
                       const std::vector<core::LayerDesc>& descs);

/// Single-node throughput in img/s: the paper's Algorithm 1 splits the
/// mini-batch over the chip's 4 core groups, so node time equals one core
/// group processing batch/4 (descriptors must be built at batch/4).
double node_throughput_img_s(const hw::CostModel& cost,
                             const std::vector<core::LayerDesc>& descs_quarter,
                             int full_batch);

}  // namespace swcaffe::dnn
