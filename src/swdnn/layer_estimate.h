// LayerDesc -> SW26010 time dispatch: the per-layer simulated times of one
// core group, used for Figs. 8/9, Table II/III and the scalability model.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/layer_desc.h"
#include "hw/cost_model.h"
#include "swdnn/conv_plan.h"

namespace swcaffe::dnn {

struct LayerTime {
  double fwd_s = 0.0;
  double bwd_s = 0.0;
  double total() const { return fwd_s + bwd_s; }
};

/// Simulated forward/backward time of one layer on ONE core group at the
/// batch size baked into the descriptor. `first_conv` drops the
/// input-gradient pass of the first convolution (no propagation to data).
LayerTime estimate_layer_sw(const hw::CostModel& cost,
                            const core::LayerDesc& desc,
                            bool first_conv = false);

/// Tuned-plan variant: when `conv_override` is non-null and the layer is a
/// convolution, its per-direction times come from the override (a swtune
/// TunedConvPlan rendered as a ConvEstimate) instead of estimate_conv. All
/// other layer kinds ignore the override.
LayerTime estimate_layer_sw(const hw::CostModel& cost,
                            const core::LayerDesc& desc, bool first_conv,
                            const ConvEstimate* conv_override);

/// Whole-net iteration time on one core group (sum of layer times).
double estimate_net_sw(const hw::CostModel& cost,
                       const std::vector<core::LayerDesc>& descs);

/// Tuned-plan variant: conv layers whose name appears in `conv_overrides`
/// are priced at the overridden (tuned) estimate. An empty map is
/// bit-identical to the 2-argument overload.
double estimate_net_sw(const hw::CostModel& cost,
                       const std::vector<core::LayerDesc>& descs,
                       const std::map<std::string, ConvEstimate>& conv_overrides);

/// Per-layer forward/backward times plus their sum, accumulated in the
/// exact order of estimate_net_sw — total_s is bit-identical to it (the
/// degenerate-equivalence contract the overlap scheduler builds on).
struct NetTimeline {
  double total_s = 0.0;
  std::vector<double> fwd_s;  ///< one entry per descriptor
  std::vector<double> bwd_s;
};

NetTimeline estimate_net_timeline(
    const hw::CostModel& cost, const std::vector<core::LayerDesc>& descs,
    const std::map<std::string, ConvEstimate>& conv_overrides = {});

/// Single-node throughput in img/s: the paper's Algorithm 1 splits the
/// mini-batch over the chip's 4 core groups, so node time equals one core
/// group processing batch/4 (descriptors must be built at batch/4).
double node_throughput_img_s(const hw::CostModel& cost,
                             const std::vector<core::LayerDesc>& descs_quarter,
                             int full_batch);

}  // namespace swcaffe::dnn
