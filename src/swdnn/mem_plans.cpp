#include "swdnn/mem_plans.h"

#include <algorithm>

#include "base/log.h"

namespace swcaffe::dnn {

double stream_time(const hw::CostModel& cost, double bytes,
                   std::size_t run_bytes) {
  if (bytes <= 0.0) return 0.0;
  const int ncpe = cost.params().mesh_size();
  const double bw = cost.dma_strided_bandwidth(
      32 * 1024, std::max<std::size_t>(run_bytes, 4), ncpe);
  return bytes / bw;
}

double pool_forward_time(const hw::CostModel& cost, const core::PoolGeom& g) {
  const double in_bytes =
      4.0 * g.batch * g.channels * static_cast<double>(g.in_h) * g.in_w;
  const double out_bytes =
      4.0 * g.batch * g.channels * static_cast<double>(g.out_h()) * g.out_w();
  // Row plan: each CPE streams K input rows (contiguous run = one row). If K
  // rows exceed the LDM, fall back to strided column blocks (Sec. IV-D).
  const std::size_t row_bytes = static_cast<std::size_t>(g.in_w) * 4;
  const std::size_t k_rows_bytes = row_bytes * std::max(g.kernel, 1);
  std::size_t run = row_bytes;
  if (k_rows_bytes > cost.params().ldm_bytes / 2) {
    // column-block fallback: contiguous run shrinks to the column block
    run = std::max<std::size_t>(
        4, (cost.params().ldm_bytes / 2) / std::max(g.kernel, 1));
  }
  return stream_time(cost, in_bytes + out_bytes, run);
}

double pool_backward_time(const hw::CostModel& cost, const core::PoolGeom& g) {
  const double in_bytes =
      4.0 * g.batch * g.channels * static_cast<double>(g.in_h) * g.in_w;
  const double out_bytes =
      4.0 * g.batch * g.channels * static_cast<double>(g.out_h()) * g.out_w();
  // top diff read + max-mask read + bottom diff scatter write.
  return stream_time(cost, 2.0 * out_bytes + in_bytes,
                     static_cast<std::size_t>(g.in_w) * 4);
}

double elementwise_time(const hw::CostModel& cost, std::int64_t count,
                        double passes) {
  // Long contiguous runs: elementwise kernels block the flat tensor.
  return stream_time(cost, 4.0 * count * passes, 8 * 1024);
}

double transform_time(const hw::CostModel& cost, std::int64_t count,
                      int inner_run) {
  // Gather side moves short strided blocks; scatter side writes dense after
  // the in-register shuffle, so the gather dominates. Two total passes.
  const std::size_t run = static_cast<std::size_t>(std::max(inner_run, 1)) * 4;
  return stream_time(cost, 4.0 * count, run) +
         stream_time(cost, 4.0 * count, 8 * 1024);
}

}  // namespace swcaffe::dnn
