#include "fault/checkpoint.h"

#include <cstring>
#include <fstream>

#include "base/log.h"

namespace swcaffe::fault {

namespace {

constexpr char kMagic[8] = {'S', 'W', 'F', 'C', 'K', 'P', 'T', '\0'};

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
void read_pod(std::istream& is, T& v) {
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
}

void write_floats(std::ostream& os, const std::vector<float>& v) {
  write_pod(os, static_cast<std::uint64_t>(v.size()));
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(float)));
}

std::vector<float> read_floats(std::istream& is) {
  std::uint64_t n = 0;
  read_pod(is, n);
  SWC_CHECK_MSG(is.good() && n < (1ull << 32),
                "checkpoint: implausible vector length " << n);
  std::vector<float> v(n);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(float)));
  return v;
}

void write_string(std::ostream& os, const std::string& s) {
  write_pod(os, static_cast<std::uint64_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& is, const char* what,
                        const std::string& path) {
  std::uint64_t len = 0;
  read_pod(is, len);
  SWC_CHECK_MSG(is.good() && len < (1ull << 20),
                "checkpoint: implausible " << what << " length " << len);
  std::string s(len, '\0');
  is.read(s.data(), static_cast<std::streamsize>(len));
  SWC_CHECK_MSG(is.good(), "checkpoint: truncated file: " << path);
  return s;
}

}  // namespace

std::string checkpoint_path(const std::string& prefix, const std::string& job,
                            std::int64_t iter) {
  if (job.empty()) return prefix + "." + std::to_string(iter);
  return prefix + "." + job + ".ckpt." + std::to_string(iter);
}

void save_checkpoint(const std::string& path, const Checkpoint& ckpt) {
  std::ofstream os(path, std::ios::binary);
  SWC_CHECK_MSG(os.is_open(), "checkpoint: cannot open " << path);
  os.write(kMagic, sizeof(kMagic));
  write_pod(os, kCheckpointVersion);
  write_pod(os, ckpt.iter);
  write_pod(os, ckpt.fault_seed);
  write_floats(os, ckpt.params);
  write_pod(os, static_cast<std::uint64_t>(ckpt.history.size()));
  for (const auto& h : ckpt.history) write_floats(os, h);
  write_floats(os, ckpt.stale_grad);
  write_pod(os, ckpt.stale_count);
  write_string(os, ckpt.plan_cache);
  write_string(os, ckpt.job_id);
  SWC_CHECK_MSG(os.good(), "checkpoint: write failed: " << path);
}

Checkpoint load_checkpoint(const std::string& path,
                           const std::string& expected_job) {
  std::ifstream is(path, std::ios::binary);
  SWC_CHECK_MSG(is.is_open(), "checkpoint: cannot open " << path);
  char magic[sizeof(kMagic)] = {};
  is.read(magic, sizeof(magic));
  SWC_CHECK_MSG(is.good() && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
                "checkpoint: " << path << " is not a swfault checkpoint");
  std::uint32_t version = 0;
  read_pod(is, version);
  SWC_CHECK_MSG(version >= 1 && version <= kCheckpointVersion,
                "checkpoint: " << path << " has version " << version
                               << ", this build reads <= "
                               << kCheckpointVersion);
  Checkpoint ckpt;
  read_pod(is, ckpt.iter);
  read_pod(is, ckpt.fault_seed);
  ckpt.params = read_floats(is);
  std::uint64_t n_hist = 0;
  read_pod(is, n_hist);
  SWC_CHECK_MSG(is.good() && n_hist < (1ull << 20),
                "checkpoint: implausible history count " << n_hist);
  ckpt.history.reserve(n_hist);
  for (std::uint64_t i = 0; i < n_hist; ++i) {
    ckpt.history.push_back(read_floats(is));
  }
  ckpt.stale_grad = read_floats(is);
  read_pod(is, ckpt.stale_count);
  ckpt.plan_cache = read_string(is, "plan-cache path", path);
  // Version 1 files end here: their job id stays empty (single-job legacy).
  if (version >= 2) ckpt.job_id = read_string(is, "job id", path);
  SWC_CHECK_MSG(is.good(), "checkpoint: truncated file: " << path);
  SWC_CHECK_MSG(expected_job.empty() || ckpt.job_id == expected_job,
                "checkpoint: " << path << " belongs to job '" << ckpt.job_id
                               << "', not '" << expected_job
                               << "'; refusing to resume another job's state");
  return ckpt;
}

}  // namespace swcaffe::fault
