// swfault: fault-tolerant synchronous SGD.
//
// Wraps parallel::SsgdTrainer's split-phase API with the resilience
// mechanisms of a production run:
//
//   * every network collective goes through the retry/backoff/escalation
//     path (resilient_comm), so message loss costs time, never gradients;
//   * straggler-aware aggregation: when a node blows the per-iteration
//     deadline, the survivors aggregate without it (bounded staleness: the
//     late gradient joins the NEXT iteration's aggregate) instead of
//     stalling the whole machine;
//   * periodic versioned checkpoints plus run_with_restarts(), which
//     rewinds a crashed run to the latest checkpoint and replays it
//     bit-identically (the fault schedule is a pure function of the seed,
//     so recovery is deterministic too).
//
// With a disabled FaultSpec every step is literally SsgdTrainer::step() —
// same call sequence, same float-summation order, bit-identical weights.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "fault/checkpoint.h"
#include "fault/injector.h"
#include "fault/resilient_comm.h"
#include "parallel/ssgd.h"

namespace swcaffe::fault {

struct FtOptions {
  parallel::SsgdOptions ssgd;
  FaultSpec faults;
  RetryPolicy retry;

  /// Simulated per-iteration compute time of a healthy node (stretched by
  /// straggler factors).
  double node_compute_s = 1e-3;
  /// A node is late when its compute exceeds node_compute_s * deadline.
  double straggler_deadline = 2.5;
  /// Max iterations a late gradient may lag (0 = always wait; 1 = the
  /// survivors proceed and fold the late gradient into the next step).
  int max_staleness = 1;

  int checkpoint_every = 0;  ///< iterations between checkpoints (0 = off)
  std::string checkpoint_prefix;  ///< path prefix for checkpoint files
  std::string plan_cache;         ///< swtune plan-cache reference to record
  /// Job namespace for checkpoint files (src/sched multi-tenant runs):
  /// non-empty ids write `<prefix>.<job>.ckpt.<iter>` and refuse to restore
  /// a checkpoint recorded by any other job. Empty = single-job legacy
  /// layout `<prefix>.<iter>`.
  std::string job_id;
};

/// Outcome of one fault-tolerant iteration.
struct StepResult {
  double loss = 0.0;
  double sim_seconds = 0.0;  ///< compute + collective + recovery
  double recovery_s = 0.0;   ///< retries, backoff, delays, escalations
  int retries = 0;
  int late_nodes = 0;
  bool stale_applied = false;  ///< a carried-over gradient joined this step
  bool crashed = false;        ///< the crash site fired; state is untouched
};

class FtSsgdTrainer {
 public:
  FtSsgdTrainer(const core::NetSpec& spec, int num_nodes,
                const core::SolverSpec& solver, const FtOptions& options,
                std::uint64_t seed = 1);

  /// One fault-tolerant SSGD iteration. When the crash site fires, returns
  /// crashed=true WITHOUT touching trainer state — the caller restarts via
  /// restore_latest() (see run_with_restarts).
  StepResult step(std::span<const float> data, std::span<const float> labels);

  /// Writes a checkpoint of the current state to `path`.
  void save_checkpoint(const std::string& path);
  /// Restores state from a checkpoint file.
  void restore_checkpoint(const std::string& path);
  /// Rewinds to the most recent checkpoint (the initial state when no
  /// periodic checkpoint was written yet) and records the restart.
  void restore_latest();

  int iter() const { return ssgd_.iter(); }
  parallel::SsgdTrainer& ssgd() { return ssgd_; }
  FaultInjector& injector() { return injector_; }
  const FaultStats& stats() const { return injector_.stats(); }
  int stale_count() const { return stale_count_; }
  const std::string& last_checkpoint() const { return last_checkpoint_; }

  void set_tracer(trace::Tracer* tracer, int track = 0) {
    ssgd_.set_tracer(tracer, track);
    injector_.set_tracer(tracer, track);
  }

 private:
  Checkpoint capture();
  void restore(const Checkpoint& ckpt);

  FtOptions options_;
  parallel::SsgdTrainer ssgd_;
  FaultInjector injector_;
  std::vector<float> stale_sum_;  ///< summed late gradients, one iter old
  int stale_count_ = 0;
  Checkpoint initial_;            ///< pre-training state (restart fallback)
  std::string last_checkpoint_;
  bool crash_fired_ = false;
};

/// Fills `data`/`labels` with iteration `iter`'s global batch. Must be a
/// pure function of `iter` so a restarted run replays identical batches.
using BatchFn = std::function<void(std::int64_t iter, std::vector<float>& data,
                                   std::vector<float>& labels)>;

struct RunResult {
  double final_loss = 0.0;
  double sim_seconds = 0.0;
  std::int64_t iters = 0;
  int restarts = 0;
};

/// Drives the trainer to `max_iter`, handling crashes by rewinding to the
/// latest checkpoint and replaying ("fault.restart" marks each recovery).
RunResult run_with_restarts(FtSsgdTrainer& trainer, const BatchFn& next_batch,
                            std::int64_t max_iter);

}  // namespace swcaffe::fault
