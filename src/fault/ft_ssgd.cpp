#include "fault/ft_ssgd.h"

#include <algorithm>

#include "base/log.h"
#include "check/timeline_extract.h"
#include "check/verify.h"
#include "topo/hierarchical.h"

namespace swcaffe::fault {

namespace {

/// Cost-only pricing of the configured collective over `nodes` nodes (the
/// straggler path reduces over the on-time subset, so the functional
/// trainer's full-width all-reduce doesn't apply).
topo::CostBreakdown comm_cost(const parallel::SsgdOptions& o, int nodes,
                              std::int64_t bytes) {
  topo::Topology topo;
  topo.num_nodes = nodes;
  topo.supernode_size = o.supernode_size;
  // `bytes` here is the RAW gradient slice; with compression the wire moves
  // the codec'ed bytes and pays the encode/decode passes on top (identity
  // when compression is kNone), matching SsgdTrainer's pricing.
  return topo::cost_compressed(
      o.compression, bytes, o.net,
      [&](std::int64_t wire) -> topo::CostBreakdown {
        switch (o.algo) {
          case parallel::AllreduceAlgo::kRhdAdjacent:
            return topo::cost_rhd(wire, topo, o.net,
                                  topo::Placement::kAdjacent);
          case parallel::AllreduceAlgo::kRhdRoundRobin:
            return topo::cost_rhd(wire, topo, o.net,
                                  topo::Placement::kRoundRobin);
          case parallel::AllreduceAlgo::kRing:
            return topo::cost_ring(wire, topo, o.net,
                                   topo::Placement::kAdjacent);
          case parallel::AllreduceAlgo::kParamServer:
            return topo::cost_param_server(wire, topo, o.net, o.param_servers);
          case parallel::AllreduceAlgo::kHierarchical:
            return topo::cost_hierarchical(wire, topo, o.net);
        }
        return {};
      });
}

}  // namespace

FtSsgdTrainer::FtSsgdTrainer(const core::NetSpec& spec, int num_nodes,
                             const core::SolverSpec& solver,
                             const FtOptions& options, std::uint64_t seed)
    : options_(options),
      ssgd_(spec, num_nodes, solver, options.ssgd, seed),
      injector_(options.faults) {
  SWC_CHECK_GE(options_.node_compute_s, 0.0);
  SWC_CHECK_GE(options_.straggler_deadline, 1.0);
  SWC_CHECK_GE(options_.max_staleness, 0);

  // Static retry-plan check (swcheck): rounds up to the eager limit are
  // staged in the LDM resend buffer; larger rounds go rendezvous and re-send
  // from the source buffer, so the eager slice is what must fit.
  check::RetryPlan plan;
  plan.name = "ft-resend";
  const auto msg_bytes =
      static_cast<std::int64_t>(ssgd_.node(0).param_count()) * 4;
  const topo::NetParams& net = options_.ssgd.net;
  plan.round_bytes =
      std::min(msg_bytes, static_cast<std::int64_t>(net.eager_limit));
  plan.resend_buffer_bytes = options_.retry.resend_buffer_bytes;
  plan.max_attempts = options_.retry.max_attempts;
  plan.backoff_base_s = options_.retry.backoff_base_s;
  plan.round_time_s =
      net.alpha + static_cast<double>(plan.round_bytes) / net.link_bw;
  plan.timeout_s = options_.retry.timeout_s;
  const check::Report report = check::verify_retry(plan);
  SWC_CHECK_MSG(report.ok(),
                "swcheck rejected the retry plan: " << report.summary());
  if (report.warning_count() > 0) {
    SWC_LOG(kWarning, "swcheck: " << report.summary());
  }

  // swsched: lay two consecutive rounds' worst-case retry ladders on the
  // network lane and verify the timeline. A ladder that outlives its
  // escalation timeout surfaces as a timeline-deadline warning (same
  // severity contract as retry-timeout above); structural breaks are errors.
  const check::Report rt_report =
      check::verify_timeline(check::timeline_from_retry(plan, /*rounds=*/2));
  SWC_CHECK_MSG(rt_report.ok(),
                "swsched rejected the retry timeline: " << rt_report.summary());
  if (rt_report.warning_count() > 0) {
    SWC_LOG(kWarning, "swsched: " << rt_report.summary());
  }

  // The trainer already verified its bucket layout geometrically; re-verify
  // here WITH the resend buffer so a bucket whose buffered round cannot be
  // staged for retry is rejected before any iteration runs.
  check::BucketPlan bplan;
  bplan.name = "ft-buckets";
  bplan.num_layers = 0;
  for (const auto& b : ssgd_.bucket_layout()) {
    bplan.num_layers = std::max(bplan.num_layers, b.last_layer + 1);
    bplan.buckets.push_back({b.first_layer, b.last_layer, b.bytes});
  }
  bplan.total_bytes = msg_bytes;
  bplan.eager_limit = net.eager_limit;
  bplan.resend_buffer_bytes = options_.retry.resend_buffer_bytes;
  const check::Report breport = check::verify_buckets(bplan);
  SWC_CHECK_MSG(breport.ok(),
                "swcheck rejected the bucket plan: " << breport.summary());

  initial_ = capture();
}

Checkpoint FtSsgdTrainer::capture() {
  // All replicas hold identical parameters and solver state outside of
  // step(), so node 0 is the canonical copy.
  Checkpoint ckpt;
  ckpt.iter = ssgd_.iter();
  ckpt.fault_seed = injector_.spec().seed;
  ckpt.params.resize(ssgd_.node(0).param_count());
  ssgd_.node(0).pack_params(ckpt.params);
  ckpt.history = ssgd_.solver(0).history();
  ckpt.stale_grad = stale_sum_;
  ckpt.stale_count = stale_count_;
  ckpt.plan_cache = options_.plan_cache;
  ckpt.job_id = options_.job_id;
  return ckpt;
}

void FtSsgdTrainer::restore(const Checkpoint& ckpt) {
  SWC_CHECK_EQ(ckpt.params.size(), ssgd_.node(0).param_count());
  for (int r = 0; r < ssgd_.num_nodes(); ++r) {
    ssgd_.node(r).unpack_params(ckpt.params);
    ssgd_.solver(r).set_state(static_cast<int>(ckpt.iter), ckpt.history);
  }
  stale_sum_ = ckpt.stale_grad;
  stale_count_ = static_cast<int>(ckpt.stale_count);
}

void FtSsgdTrainer::save_checkpoint(const std::string& path) {
  fault::save_checkpoint(path, capture());
}

void FtSsgdTrainer::restore_checkpoint(const std::string& path) {
  restore(load_checkpoint(path, options_.job_id));
}

void FtSsgdTrainer::restore_latest() {
  if (!last_checkpoint_.empty()) {
    restore_checkpoint(last_checkpoint_);
  } else {
    restore(initial_);
  }
  injector_.stats().restarts += 1;
  injector_.trace_restart();
}

StepResult FtSsgdTrainer::step(std::span<const float> data,
                               std::span<const float> labels) {
  StepResult res;
  const std::int64_t it = ssgd_.iter();
  const int p = ssgd_.num_nodes();

  // --- Crash site ----------------------------------------------------------
  if (!crash_fired_) {
    for (int node = 0; node < p; ++node) {
      if (injector_.crashes_at(node, it)) {
        // The process dies before the update lands; state is untouched. The
        // guard keeps the (deterministic) schedule from re-killing the
        // replayed iteration after restart.
        crash_fired_ = true;
        injector_.stats().crashes += 1;
        injector_.trace_inject("fault.crash");
        res.crashed = true;
        return res;
      }
    }
  }

  std::vector<std::vector<float>> grads(p);
  res.loss = ssgd_.forward_backward_packed(data, labels, grads);
  const std::size_t n = grads[0].size();

  // --- Straggler site ------------------------------------------------------
  const double deadline = options_.node_compute_s * options_.straggler_deadline;
  std::vector<int> late;
  double slowest = options_.node_compute_s;
  for (int node = 0; node < p; ++node) {
    const double t = options_.node_compute_s * injector_.straggler_factor(node);
    if (t > deadline && options_.max_staleness > 0) {
      late.push_back(node);
    } else {
      slowest = std::max(slowest, t);
    }
  }
  if (static_cast<int>(late.size()) == p) {
    // Everyone is late: there is no on-time quorum to proceed with, so the
    // barrier degenerates to plain synchronous SGD on the slow machine.
    for (int node : late) {
      slowest = std::max(
          slowest, options_.node_compute_s * injector_.straggler_factor(node));
    }
    late.clear();
  }
  res.late_nodes = static_cast<int>(late.size());

  if (late.empty()) {
    // --- Synchronous path (the common case) --------------------------------
    // The REAL functional all-reduce runs, so float-summation order — and
    // therefore every weight bit — matches the fault-free trainer. With
    // buckets the collective is replayed bucket by bucket in network service
    // order, each against its own slice of the fault schedule (cumulative
    // round offsets keep the coordinates distinct); one bucket reproduces
    // the unbucketed recovery bit-for-bit.
    RecoveryCost rec;
    int round_offset = 0;
    for (int b = ssgd_.num_buckets() - 1; b >= 0; --b) {
      const topo::CostBreakdown& bc = ssgd_.allreduce_bucket(grads, b);
      const RecoveryCost r =
          charge_recovery(bc, it, injector_, options_.retry, round_offset);
      rec.seconds += r.seconds;
      rec.retries += r.retries;
      rec.escalations += r.escalations;
      rec.duplicates += r.duplicates;
      rec.delays += r.delays;
      round_offset += bc.alpha_terms;
    }
    const topo::CostBreakdown& comm = ssgd_.last_comm();
    res.recovery_s = rec.seconds;
    res.retries = rec.retries;
    res.sim_seconds = slowest + comm.seconds + rec.seconds;
    if (stale_sum_.empty()) {
      ssgd_.apply(grads);
    } else {
      // A straggler's gradient from the previous iteration joins now
      // (staleness 1); every contribution is weighted equally.
      std::vector<float> agg = grads[0];
      for (std::size_t i = 0; i < n; ++i) agg[i] += stale_sum_[i];
      if (options_.ssgd.average) {
        const float inv = 1.0f / static_cast<float>(p + stale_count_);
        for (auto& v : agg) v *= inv;
      }
      ssgd_.apply_aggregate(agg);
      stale_sum_.clear();
      stale_count_ = 0;
      res.stale_applied = true;
    }
  } else {
    // --- Bounded-staleness path --------------------------------------------
    injector_.stats().straggler_iters += late.size();
    for (std::size_t i = 0; i < late.size(); ++i) {
      injector_.trace_inject("fault.straggler");
    }
    // Survivors aggregate at the deadline instead of waiting out the
    // stragglers; the late gradients are buffered for the next step.
    std::vector<float> agg(n, 0.0f);
    std::vector<bool> is_late(p, false);
    for (int node : late) is_late[node] = true;
    int ontime = 0;
    for (int r = 0; r < p; ++r) {
      if (is_late[r]) continue;
      for (std::size_t i = 0; i < n; ++i) agg[i] += grads[r][i];
      ++ontime;
    }
    const int contributions = ontime + stale_count_;
    if (!stale_sum_.empty()) {
      for (std::size_t i = 0; i < n; ++i) agg[i] += stale_sum_[i];
      res.stale_applied = true;
    }
    // Buffer this iteration's late gradients (consumed next step).
    stale_sum_.assign(n, 0.0f);
    for (int node : late) {
      for (std::size_t i = 0; i < n; ++i) stale_sum_[i] += grads[node][i];
    }
    stale_count_ = static_cast<int>(late.size());
    if (options_.ssgd.average && contributions > 0) {
      const float inv = 1.0f / static_cast<float>(contributions);
      for (auto& v : agg) v *= inv;
    }
    const topo::CostBreakdown comm =
        comm_cost(options_.ssgd, std::max(ontime, 1),
                  static_cast<std::int64_t>(n) * 4);
    const RecoveryCost rec = charge_recovery(comm, it, injector_,
                                             options_.retry);
    res.recovery_s = rec.seconds;
    res.retries = rec.retries;
    // The survivors commit at the deadline — that is the whole point.
    res.sim_seconds = deadline + comm.seconds + rec.seconds;
    ssgd_.apply_aggregate(agg);
  }

  // --- Periodic checkpoint -------------------------------------------------
  if (options_.checkpoint_every > 0 &&
      ssgd_.iter() % options_.checkpoint_every == 0) {
    SWC_CHECK_MSG(!options_.checkpoint_prefix.empty(),
                  "checkpoint_every set without checkpoint_prefix");
    last_checkpoint_ = checkpoint_path(options_.checkpoint_prefix,
                                       options_.job_id, ssgd_.iter());
    save_checkpoint(last_checkpoint_);
  }
  return res;
}

RunResult run_with_restarts(FtSsgdTrainer& trainer, const BatchFn& next_batch,
                            std::int64_t max_iter) {
  RunResult out;
  std::vector<float> data, labels;
  while (trainer.iter() < max_iter) {
    next_batch(trainer.iter(), data, labels);
    const StepResult r = trainer.step(data, labels);
    out.sim_seconds += r.sim_seconds;
    if (r.crashed) {
      trainer.restore_latest();
      out.restarts += 1;
      continue;
    }
    out.final_loss = r.loss;
  }
  out.iters = trainer.iter();
  return out;
}

}  // namespace swcaffe::fault
