// swfault: resilient message delivery over the cost-model network.
//
// The functional all-reduce always produces the correct sums — what a lossy
// network changes is *when* they arrive and how much wire time recovery
// burns. charge_recovery() replays a collective's message rounds against
// the fault schedule: dropped rounds are retried with exponential backoff
// (priced at cost-model rates), duplicated rounds pay the wire twice,
// delayed rounds add their latency, and a round that exhausts its retry
// budget escalates to a reliable fallback that charges the full timeout.
// Because escalation always delivers, every schedule is eventual-delivery:
// faults change simulated time, never the reduced values.
#pragma once

#include <cstdint>

#include "fault/injector.h"
#include "topo/allreduce.h"

namespace swcaffe::fault {

/// Retry discipline of the resilient send path.
struct RetryPolicy {
  int max_attempts = 6;          ///< sends per round before escalating
  double backoff_base_s = 20e-6; ///< backoff before retry k is base * 2^k
  double timeout_s = 0.5;        ///< charged when a round escalates
  /// LDM resend-buffer budget per round; swcheck's retry rule verifies the
  /// buffered round fits (see check::RetryPlan).
  std::int64_t resend_buffer_bytes = 64 * 1024;
};

/// Extra simulated time a collective spent on fault recovery.
struct RecoveryCost {
  double seconds = 0.0;  ///< backoff + re-sends + delays + escalations
  int retries = 0;
  int escalations = 0;
  int duplicates = 0;
  int delays = 0;
};

/// Replays `base`'s alpha_terms message rounds of iteration `iter` against
/// the injector's schedule and prices the recovery actions. Updates
/// injector stats and emits "fault.inject" / "fault.retry" instants through
/// the injector's tracer. Deterministic: depends only on (spec, iter,
/// round, attempt). `round_offset` shifts the round coordinate — callers
/// replaying one collective as several bucketed sub-collectives pass each
/// bucket's cumulative starting round so no two buckets share a coordinate
/// (with offset 0 and a single collective this is the classic behavior,
/// bit-identical to before the parameter existed).
RecoveryCost charge_recovery(const topo::CostBreakdown& base,
                             std::int64_t iter, FaultInjector& injector,
                             const RetryPolicy& policy, int round_offset = 0);

}  // namespace swcaffe::fault
