// swfault: versioned checkpoint of full trainer state.
//
// A checkpoint captures everything a crashed SSGD run needs to resume
// bit-identically: the Solver iteration counter, packed parameters, the
// per-parameter momentum buffers, the bounded-staleness carry-over gradient
// (if one was pending) and the plan-cache reference, plus the fault seed so
// a restarted run replays the identical fault schedule. The on-disk format
// is magic + version; loading rejects unknown magics and future versions
// with a diagnostic instead of misreading them.
//
// Version 2 adds a job id: on a multi-tenant cluster (src/sched) several
// jobs checkpoint concurrently, so files are namespaced per job
// (`<prefix>.<job>.ckpt.<iter>`) and every checkpoint records which job
// wrote it — a load on behalf of the wrong job is rejected instead of
// silently resuming another tenant's weights. Version 1 files still load
// (their job id is empty, the single-job legacy).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace swcaffe::fault {

inline constexpr std::uint32_t kCheckpointVersion = 2;

struct Checkpoint {
  std::int64_t iter = 0;
  std::uint64_t fault_seed = 0;
  std::vector<float> params;                 ///< packed net parameters
  std::vector<std::vector<float>> history;   ///< solver momentum per param
  std::vector<float> stale_grad;  ///< pending bounded-staleness gradient
  std::int64_t stale_count = 0;   ///< nodes whose gradients are in stale_grad
  std::string plan_cache;         ///< swtune plan-cache path ("" = none)
  std::string job_id;             ///< owning job ("" = single-job legacy)
};

/// Checkpoint file name of `job` at `iter`: `<prefix>.<job>.ckpt.<iter>`,
/// so concurrent jobs sharing one prefix can never clobber each other.
/// With an empty job the legacy single-job layout `<prefix>.<iter>` is kept
/// (the prefix conventionally already ends in ".ckpt").
std::string checkpoint_path(const std::string& prefix, const std::string& job,
                            std::int64_t iter);

/// Writes `ckpt` to `path` (binary, versioned). Throws base::CheckError on
/// I/O failure.
void save_checkpoint(const std::string& path, const Checkpoint& ckpt);

/// Reads a checkpoint back. Throws base::CheckError on I/O failure, bad
/// magic, or an unsupported version. A non-empty `expected_job` demands the
/// checkpoint was written by that job: a mismatch (including a legacy file
/// with no job id) throws instead of resuming another job's state.
Checkpoint load_checkpoint(const std::string& path,
                           const std::string& expected_job = "");

}  // namespace swcaffe::fault
