// swfault: versioned checkpoint of full trainer state.
//
// A checkpoint captures everything a crashed SSGD run needs to resume
// bit-identically: the Solver iteration counter, packed parameters, the
// per-parameter momentum buffers, the bounded-staleness carry-over gradient
// (if one was pending) and the plan-cache reference, plus the fault seed so
// a restarted run replays the identical fault schedule. The on-disk format
// is magic + version; loading rejects unknown magics and future versions
// with a diagnostic instead of misreading them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace swcaffe::fault {

inline constexpr std::uint32_t kCheckpointVersion = 1;

struct Checkpoint {
  std::int64_t iter = 0;
  std::uint64_t fault_seed = 0;
  std::vector<float> params;                 ///< packed net parameters
  std::vector<std::vector<float>> history;   ///< solver momentum per param
  std::vector<float> stale_grad;  ///< pending bounded-staleness gradient
  std::int64_t stale_count = 0;   ///< nodes whose gradients are in stale_grad
  std::string plan_cache;         ///< swtune plan-cache path ("" = none)
};

/// Writes `ckpt` to `path` (binary, versioned). Throws base::CheckError on
/// I/O failure.
void save_checkpoint(const std::string& path, const Checkpoint& ckpt);

/// Reads a checkpoint back. Throws base::CheckError on I/O failure, bad
/// magic, or an unsupported version.
Checkpoint load_checkpoint(const std::string& path);

}  // namespace swcaffe::fault
