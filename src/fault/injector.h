// swfault: the deterministic fault injector.
//
// Every injection decision is a pure function of (seed, site, coordinates)
// via a splitmix64 counter hash — there is no internal RNG stream to drift.
// That gives the determinism guarantee the test harness builds on: the same
// FaultSpec produces the identical fault schedule whether the run is traced
// or not, restarted from a checkpoint or not, and regardless of how many
// times any site is queried. Faults and recovery actions are surfaced as
// trace instants ("fault.inject", "fault.retry", "fault.restart") so
// resilience behaviour is a checkable trace property.
#pragma once

#include <cstdint>

#include "fault/fault_spec.h"
#include "hw/dma.h"
#include "trace/tracer.h"

namespace swcaffe::fault {

/// Site identifiers mixed into the hash; one per injection point so sites
/// draw from independent schedules.
enum class Site : std::uint64_t {
  kNetDrop = 0x6e657444,   // 'netD'
  kNetDup = 0x6e657455,    // 'netU'
  kNetDelay = 0x6e65744c,  // 'netL'
  kDma = 0x646d6146,       // 'dmaF'
};

/// What happens to one message round of a collective.
struct MessageFate {
  bool dropped = false;     ///< lost in flight; sender must retry
  bool duplicated = false;  ///< delivered twice (receiver dedups; wire paid)
  double delay_s = 0.0;     ///< extra in-flight latency
};

/// Running totals of injected faults and recovery actions (reported by the
/// CLI and asserted on by tests).
struct FaultStats {
  std::int64_t messages = 0;       ///< message rounds examined
  std::int64_t drops = 0;
  std::int64_t duplicates = 0;
  std::int64_t delays = 0;
  std::int64_t retries = 0;        ///< network re-sends after a drop
  std::int64_t escalations = 0;    ///< sends that exhausted max_attempts
  std::int64_t dma_transfers = 0;
  std::int64_t dma_retries = 0;
  std::int64_t straggler_iters = 0;  ///< node-iterations past the deadline
  std::int64_t crashes = 0;
  std::int64_t restarts = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultSpec& spec) : spec_(spec) {}

  const FaultSpec& spec() const { return spec_; }
  bool enabled() const { return spec_.enabled(); }

  /// Fate of message round `round`, attempt `attempt`, of iteration `iter`'s
  /// collective. Pure in its arguments; retries (attempt > 0) draw fresh
  /// drop decisions so a retried send can succeed.
  MessageFate message_fate(std::int64_t iter, int round, int attempt) const;

  /// Number of issues (>= 1) DMA transfer number `seq` needs; capped so a
  /// pathological spec cannot loop. Transient failures re-issue the full
  /// transfer.
  int dma_attempts(std::int64_t seq) const;
  double dma_slowdown() const { return spec_.dma_degrade; }

  /// Compute-time multiplier of `node` (1.0 unless listed as a straggler).
  double straggler_factor(int node) const;

  /// True when `node` crashes upon reaching iteration `iter`.
  bool crashes_at(int node, std::int64_t iter) const;

  // --- Observability ---------------------------------------------------------
  void set_tracer(trace::Tracer* tracer, int track) {
    tracer_ = tracer;
    trace_track_ = track;
  }
  trace::Tracer* tracer() const { return tracer_; }
  int trace_track() const { return trace_track_; }

  /// Emits a "fault.inject" / "fault.retry" / "fault.restart" instant with
  /// `kind` as the category (no-op without a tracer).
  void trace_inject(const char* kind) const;
  void trace_retry(const char* kind) const;
  void trace_restart() const;

  FaultStats& stats() { return stats_; }
  const FaultStats& stats() const { return stats_; }

 private:
  /// Uniform double in [0, 1): splitmix64 over (seed, site, a, b, c).
  double u01(Site site, std::uint64_t a, std::uint64_t b,
             std::uint64_t c) const;

  FaultSpec spec_;
  trace::Tracer* tracer_ = nullptr;
  int trace_track_ = 0;
  FaultStats stats_;
};

/// Adapter plugging the injector into hw::DmaEngine: transient failures
/// re-issue transfers, degradation slows them. Each engine keeps its own
/// transfer sequence number, so per-engine schedules are deterministic.
class DmaFaults : public hw::DmaFaultHook {
 public:
  explicit DmaFaults(FaultInjector& injector) : injector_(&injector) {}

  int attempts(std::size_t bytes) override;
  double slowdown() const override { return injector_->dma_slowdown(); }

 private:
  FaultInjector* injector_;
  std::int64_t seq_ = 0;
};

}  // namespace swcaffe::fault
