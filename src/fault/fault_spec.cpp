#include "fault/fault_spec.h"

#include <cstdlib>
#include <sstream>

#include "base/log.h"

namespace swcaffe::fault {

bool FaultSpec::network_enabled() const {
  return drop_p > 0.0 || dup_p > 0.0 || delay_p > 0.0 || link_degrade > 1.0;
}

bool FaultSpec::dma_enabled() const {
  return dma_fail_p > 0.0 || dma_degrade > 1.0;
}

bool FaultSpec::enabled() const {
  return network_enabled() || dma_enabled() || !stragglers.empty() ||
         crash_enabled();
}

namespace {

double parse_double(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  SWC_CHECK_MSG(end != value.c_str() && *end == '\0',
                "fault spec: bad value \"" << value << "\" for " << key);
  return v;
}

double parse_probability(const std::string& key, const std::string& value) {
  const double p = parse_double(key, value);
  SWC_CHECK_MSG(p >= 0.0 && p <= 1.0,
                "fault spec: " << key << "=" << p << " is not a probability");
  return p;
}

double parse_factor(const std::string& key, const std::string& value) {
  const double f = parse_double(key, value);
  SWC_CHECK_MSG(f >= 1.0, "fault spec: " << key << "=" << f
                                         << " must be a slowdown >= 1");
  return f;
}

void parse_clause(FaultSpec& spec, const std::string& clause) {
  const std::size_t eq = clause.find('=');
  SWC_CHECK_MSG(eq != std::string::npos,
                "fault spec: clause \"" << clause << "\" is not key=value");
  const std::string key = clause.substr(0, eq);
  const std::string value = clause.substr(eq + 1);
  if (key == "seed") {
    spec.seed = static_cast<std::uint64_t>(
        std::strtoull(value.c_str(), nullptr, 10));
  } else if (key == "drop") {
    spec.drop_p = parse_probability(key, value);
  } else if (key == "dup") {
    spec.dup_p = parse_probability(key, value);
  } else if (key == "delay") {
    spec.delay_p = parse_probability(key, value);
  } else if (key == "delay_s") {
    spec.delay_s = parse_double(key, value);
    SWC_CHECK_MSG(spec.delay_s >= 0.0, "fault spec: delay_s must be >= 0");
  } else if (key == "link") {
    spec.link_degrade = parse_factor(key, value);
  } else if (key == "dma") {
    spec.dma_fail_p = parse_probability(key, value);
  } else if (key == "dma_slow") {
    spec.dma_degrade = parse_factor(key, value);
  } else if (key == "straggler") {
    const std::size_t x = value.find('x');
    SWC_CHECK_MSG(x != std::string::npos,
                  "fault spec: straggler wants NODExFACTOR, got \"" << value
                                                                   << "\"");
    StragglerSpec s;
    s.node = std::atoi(value.substr(0, x).c_str());
    s.factor = parse_factor("straggler", value.substr(x + 1));
    SWC_CHECK_MSG(s.node >= 0, "fault spec: straggler node must be >= 0");
    spec.stragglers.push_back(s);
  } else if (key == "crash") {
    const std::size_t at = value.find('@');
    SWC_CHECK_MSG(at != std::string::npos,
                  "fault spec: crash wants NODE@ITER, got \"" << value << "\"");
    spec.crash_node = std::atoi(value.substr(0, at).c_str());
    spec.crash_iter = std::atoi(value.substr(at + 1).c_str());
    SWC_CHECK_MSG(spec.crash_node >= 0 && spec.crash_iter >= 0,
                  "fault spec: crash node/iter must be >= 0");
  } else {
    SWC_CHECK_MSG(false, "fault spec: unknown key \"" << key << "\"");
  }
}

}  // namespace

FaultSpec parse_fault_spec(const std::string& spec) {
  FaultSpec out;
  if (spec.empty() || spec == "none") return out;
  std::string clause;
  for (std::size_t i = 0; i <= spec.size(); ++i) {
    if (i == spec.size() || spec[i] == ';' || spec[i] == ',') {
      if (!clause.empty()) parse_clause(out, clause);
      clause.clear();
    } else if (spec[i] != ' ') {
      clause += spec[i];
    }
  }
  return out;
}

std::string to_string(const FaultSpec& spec) {
  if (!spec.enabled()) return "none";
  std::ostringstream os;
  const char* sep = "";
  auto clause = [&](const std::string& text) {
    os << sep << text;
    sep = ";";
  };
  auto num = [](double v) {
    std::ostringstream s;
    s << v;
    return s.str();
  };
  if (spec.drop_p > 0) clause("drop=" + num(spec.drop_p));
  if (spec.dup_p > 0) clause("dup=" + num(spec.dup_p));
  if (spec.delay_p > 0) {
    clause("delay=" + num(spec.delay_p));
    clause("delay_s=" + num(spec.delay_s));
  }
  if (spec.link_degrade > 1.0) clause("link=" + num(spec.link_degrade));
  if (spec.dma_fail_p > 0) clause("dma=" + num(spec.dma_fail_p));
  if (spec.dma_degrade > 1.0) clause("dma_slow=" + num(spec.dma_degrade));
  for (const StragglerSpec& s : spec.stragglers) {
    clause("straggler=" + std::to_string(s.node) + "x" + num(s.factor));
  }
  if (spec.crash_enabled()) {
    clause("crash=" + std::to_string(spec.crash_node) + "@" +
           std::to_string(spec.crash_iter));
  }
  clause("seed=" + std::to_string(spec.seed));
  return os.str();
}

}  // namespace swcaffe::fault
