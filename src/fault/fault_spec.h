// swfault: fault-model specification (what can go wrong, and how often).
//
// The simulated TaihuLight of the scalability experiments is perfectly
// healthy: every link runs at its calibrated rate and synchronous SGD
// barriers on the slowest of 1024 nodes. A FaultSpec describes the
// degradations a production machine actually exhibits — message loss and
// delay on the fat-tree, transient DMA failures, straggler nodes, whole-node
// crashes — as a small set of seeded probabilities that the FaultInjector
// turns into a deterministic schedule (same spec + seed => identical faults,
// identical trace, bit-identical recovery).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace swcaffe::fault {

/// One persistently slow node: its per-iteration compute time is multiplied
/// by `factor` (>= 1).
struct StragglerSpec {
  int node = 0;
  double factor = 1.0;
};

struct FaultSpec {
  /// Seed of the whole schedule. Every injection decision is a pure function
  /// of (seed, site, coordinates), so two runs with the same spec see the
  /// same faults regardless of restarts.
  std::uint64_t seed = 1;

  // --- Network (topo::NetworkModel site) -----------------------------------
  double drop_p = 0.0;        ///< per-message-round drop probability
  double dup_p = 0.0;         ///< per-message-round duplication probability
  double delay_p = 0.0;       ///< per-message-round extra-delay probability
  double delay_s = 200e-6;    ///< extra delay charged when a delay fires
  double link_degrade = 1.0;  ///< multiplier (>= 1) on per-round wire time

  // --- DMA (hw::DmaEngine site) --------------------------------------------
  double dma_fail_p = 0.0;   ///< transient failure per transfer (re-issued)
  double dma_degrade = 1.0;  ///< throughput degradation multiplier (>= 1)

  // --- Stragglers (parallel::NodeRunner / FtSsgdTrainer site) --------------
  std::vector<StragglerSpec> stragglers;

  // --- Whole-node crash ----------------------------------------------------
  int crash_node = -1;  ///< node that crashes (-1: never)
  int crash_iter = -1;  ///< iteration at which it crashes (-1: never)

  /// True when any injection site is active.
  bool enabled() const;
  bool network_enabled() const;
  bool dma_enabled() const;
  bool crash_enabled() const { return crash_node >= 0 && crash_iter >= 0; }
};

/// Parses the CLI grammar: "none" (or "") for a clean machine, else
/// ';'/','-separated key=value clauses:
///
///   drop=P dup=P delay=P delay_s=SECONDS link=FACTOR
///   dma=P dma_slow=FACTOR
///   straggler=NODExFACTOR      (repeatable, e.g. straggler=3x4.0)
///   crash=NODE@ITER            (e.g. crash=1@7)
///   seed=N
///
/// Example: "drop=0.02;delay=0.1;straggler=2x3.5;crash=1@40;seed=7".
/// Throws base::CheckError on unknown keys or malformed values.
FaultSpec parse_fault_spec(const std::string& spec);

/// Canonical round-trippable rendering ("none" for a clean spec).
std::string to_string(const FaultSpec& spec);

}  // namespace swcaffe::fault
