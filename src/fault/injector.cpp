#include "fault/injector.h"

namespace swcaffe::fault {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

double FaultInjector::u01(Site site, std::uint64_t a, std::uint64_t b,
                          std::uint64_t c) const {
  std::uint64_t h = splitmix64(spec_.seed ^ static_cast<std::uint64_t>(site));
  h = splitmix64(h ^ a);
  h = splitmix64(h ^ b);
  h = splitmix64(h ^ c);
  // 53 mantissa bits -> uniform in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

MessageFate FaultInjector::message_fate(std::int64_t iter, int round,
                                        int attempt) const {
  MessageFate fate;
  if (!spec_.network_enabled()) return fate;
  const auto i = static_cast<std::uint64_t>(iter);
  const auto r = static_cast<std::uint64_t>(round);
  const auto a = static_cast<std::uint64_t>(attempt);
  fate.dropped = u01(Site::kNetDrop, i, r, a) < spec_.drop_p;
  fate.duplicated = u01(Site::kNetDup, i, r, a) < spec_.dup_p;
  if (u01(Site::kNetDelay, i, r, a) < spec_.delay_p) {
    fate.delay_s = spec_.delay_s;
  }
  return fate;
}

int FaultInjector::dma_attempts(std::int64_t seq) const {
  // A transfer is re-issued while the transient-failure draw fires, capped
  // at 4 issues (beyond that a real machine raises a machine check, which
  // the crash site models).
  constexpr int kMaxIssues = 4;
  int attempts = 1;
  while (attempts < kMaxIssues &&
         u01(Site::kDma, static_cast<std::uint64_t>(seq),
             static_cast<std::uint64_t>(attempts), 0) < spec_.dma_fail_p) {
    ++attempts;
  }
  return attempts;
}

double FaultInjector::straggler_factor(int node) const {
  double factor = 1.0;
  for (const StragglerSpec& s : spec_.stragglers) {
    if (s.node == node) factor *= s.factor;
  }
  return factor;
}

bool FaultInjector::crashes_at(int node, std::int64_t iter) const {
  return spec_.crash_enabled() && node == spec_.crash_node &&
         iter == spec_.crash_iter;
}

void FaultInjector::trace_inject(const char* kind) const {
  if (tracer_ != nullptr) tracer_->instant(trace_track_, "fault.inject", kind);
}

void FaultInjector::trace_retry(const char* kind) const {
  if (tracer_ != nullptr) tracer_->instant(trace_track_, "fault.retry", kind);
}

void FaultInjector::trace_restart() const {
  if (tracer_ != nullptr) {
    tracer_->instant(trace_track_, "fault.restart", "fault.crash");
  }
}

int DmaFaults::attempts(std::size_t bytes) {
  (void)bytes;
  const std::int64_t seq = seq_++;
  injector_->stats().dma_transfers += 1;
  const int n = injector_->dma_attempts(seq);
  if (n > 1) {
    injector_->stats().dma_retries += n - 1;
    injector_->trace_inject("fault.dma");
    for (int i = 1; i < n; ++i) injector_->trace_retry("fault.dma");
  }
  return n;
}

}  // namespace swcaffe::fault
