#include "fault/resilient_comm.h"

#include "base/log.h"

namespace swcaffe::fault {

RecoveryCost charge_recovery(const topo::CostBreakdown& base,
                             std::int64_t iter, FaultInjector& injector,
                             const RetryPolicy& policy, int round_offset) {
  SWC_CHECK_GT(policy.max_attempts, 0);
  SWC_CHECK_GE(round_offset, 0);
  RecoveryCost out;
  const FaultSpec& spec = injector.spec();
  if (!spec.network_enabled() || base.alpha_terms == 0) return out;

  // The base collective already charged alpha_terms rounds at healthy-link
  // rates; recovery prices what the schedule adds on top.
  const double per_round = base.seconds / base.alpha_terms;
  // A degraded link stretches every round, including the first send.
  if (spec.link_degrade > 1.0) {
    out.seconds += base.seconds * (spec.link_degrade - 1.0);
  }

  FaultStats& stats = injector.stats();
  for (int round = 0; round < base.alpha_terms; ++round) {
    for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
      stats.messages += 1;
      const MessageFate fate =
          injector.message_fate(iter, round_offset + round, attempt);
      if (fate.delay_s > 0.0) {
        out.seconds += fate.delay_s;
        out.delays += 1;
        stats.delays += 1;
        injector.trace_inject("fault.delay");
      }
      if (fate.duplicated) {
        // Receiver discards the copy; the wire still carried it.
        out.seconds += per_round * spec.link_degrade;
        out.duplicates += 1;
        stats.duplicates += 1;
        injector.trace_inject("fault.dup");
      }
      if (!fate.dropped) break;  // delivered
      stats.drops += 1;
      injector.trace_inject("fault.drop");
      if (attempt + 1 == policy.max_attempts) {
        // Out of retries: escalate to the reliable (acked, rendezvous)
        // fallback, which always delivers but eats the full timeout.
        out.seconds += policy.timeout_s;
        out.escalations += 1;
        stats.escalations += 1;
        injector.trace_retry("fault.escalate");
        break;
      }
      // Exponential backoff, then re-send the buffered round.
      out.seconds += policy.backoff_base_s * static_cast<double>(1 << attempt) +
                     per_round * spec.link_degrade;
      out.retries += 1;
      stats.retries += 1;
      injector.trace_retry("fault.drop");
    }
  }
  return out;
}

}  // namespace swcaffe::fault
