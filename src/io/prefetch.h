// Mini-batch prefetcher: a real I/O thread that materializes the next
// mini-batch while the current one trains (paper Sec. V-B: "each worker of
// the parallel DNN training task uses an I/O thread to prefetch one
// mini-batch via random sampling prior to each iteration"). The simulated
// read time of each batch (disk model) is reported so harnesses can overlap
// it against compute time.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "io/dataset.h"
#include "io/disk_model.h"

namespace swcaffe::io {

struct Batch {
  std::vector<float> images;  ///< batch * channels * height * width
  std::vector<float> labels;  ///< batch
  double simulated_read_s = 0.0;
};

class Prefetcher {
 public:
  /// `num_procs` is the total reader count sharing the filesystem (used by
  /// the contention model); `rank` seeds this worker's sampler.
  Prefetcher(const DatasetSpec& dataset, const DiskParams& disk,
             FileLayout layout, int batch, int rank = 0, int num_procs = 1,
             std::size_t queue_depth = 2);
  ~Prefetcher();

  Prefetcher(const Prefetcher&) = delete;
  Prefetcher& operator=(const Prefetcher&) = delete;

  /// Blocks until the next batch is ready.
  Batch pop();

 private:
  void worker();

  /// Applies random crop + mirror per the dataset spec; writes
  /// channels * out_height * out_width floats to `dst`.
  void augment(const std::vector<float>& image, float* dst);

  SyntheticImageNet data_;
  DiskParams disk_;
  FileLayout layout_;
  int batch_;
  int num_procs_;
  Sampler sampler_;
  base::Rng augment_rng_{0xa497};
  std::size_t queue_depth_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Batch> queue_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace swcaffe::io
