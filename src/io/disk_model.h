// Shared-filesystem model (paper Sec. V-B).
//
// TaihuLight's filesystem distributes a file over disk arrays. The default
// "single-split" mode keeps one file on ONE array, so N concurrent readers
// share that array's bandwidth; the paper's optimization stripes the dataset
// over 32 arrays in 256 MB blocks, bounding the readers per array at
// ~N/32 * 2 (a contiguous mini-batch read of ~192 MB touches at most two
// stripes).
#pragma once

#include <cstdint>

namespace swcaffe::io {

enum class FileLayout {
  kSingleSplit,  ///< whole dataset resident on one disk array (default)
  kStriped,      ///< round-robin striped over all arrays
};

struct DiskParams {
  int num_arrays = 32;
  double array_bw = 2.0e9;               ///< bytes/s per disk array
  std::int64_t stripe_bytes = 256 << 20; ///< striping block (paper: 256 MB)
};

/// Wall time for `num_procs` processes to each read `bytes_per_proc`
/// contiguous bytes at distinct offsets of a `file_bytes` dataset.
/// Contention: each array serves its readers at array_bw shared equally;
/// time = max over arrays of (bytes requested / array_bw).
double read_time(const DiskParams& disk, FileLayout layout, int num_procs,
                 std::int64_t bytes_per_proc, std::int64_t file_bytes);

/// Aggregate bandwidth achieved by the read above.
double aggregate_bandwidth(const DiskParams& disk, FileLayout layout,
                           int num_procs, std::int64_t bytes_per_proc,
                           std::int64_t file_bytes);

/// Upper bound on concurrent readers per array under striping (the paper's
/// N/32 * 2 argument); exposed for the property tests.
int max_readers_per_array(const DiskParams& disk, int num_procs,
                          std::int64_t bytes_per_proc);

}  // namespace swcaffe::io
