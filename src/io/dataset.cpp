#include "io/dataset.h"

#include <cmath>

#include "base/log.h"

namespace swcaffe::io {

int SyntheticImageNet::label_of(std::int64_t index) const {
  SWC_CHECK_GE(index, 0);
  SWC_CHECK_LT(index, spec_.num_samples);
  // Stable hash -> label so labels are balanced but not trivially periodic.
  std::uint64_t h = static_cast<std::uint64_t>(index) * 0x9E3779B97F4A7C15ull +
                    spec_.seed;
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDull;
  h ^= h >> 33;
  return static_cast<int>(h % spec_.classes);
}

void SyntheticImageNet::fill_image(std::int64_t index,
                                   std::vector<float>& out) const {
  const int label = label_of(index);
  const std::size_t n =
      static_cast<std::size_t>(spec_.channels) * spec_.height * spec_.width;
  out.resize(n);
  base::Rng rng(spec_.seed ^ (static_cast<std::uint64_t>(index) * 0xABCDull));
  // Class-dependent low-frequency pattern plus noise: enough structure for a
  // model to fit, statistically ImageNet-like in mean/variance.
  for (std::size_t i = 0; i < n; ++i) {
    const float pattern =
        0.5f * std::sin(0.01f * static_cast<float>(i) * ((label % 17) + 1));
    out[i] = pattern + rng.gaussian(0.0f, 0.3f);
  }
}

Sampler::Sampler(std::int64_t num_samples, std::uint64_t seed, int rank)
    : num_samples_(num_samples),
      rng_(seed ^ (static_cast<std::uint64_t>(rank) * 0x5DEECE66Dull)) {
  SWC_CHECK_GT(num_samples_, 0);
}

std::int64_t Sampler::next() { return rng_.uniform_int(0, num_samples_ - 1); }

}  // namespace swcaffe::io
