#include "io/disk_model.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "base/log.h"

namespace swcaffe::io {

double read_time(const DiskParams& disk, FileLayout layout, int num_procs,
                 std::int64_t bytes_per_proc, std::int64_t file_bytes) {
  SWC_CHECK_GT(num_procs, 0);
  SWC_CHECK_GT(bytes_per_proc, 0);
  SWC_CHECK_GE(file_bytes, bytes_per_proc);

  if (layout == FileLayout::kSingleSplit) {
    // Everyone hammers the one array holding the file.
    const double total = static_cast<double>(bytes_per_proc) * num_procs;
    return total / disk.array_bw;
  }

  // Striped: spread the processes' contiguous reads evenly over the file and
  // bill each stripe's bytes to its round-robin array.
  std::vector<double> load(disk.num_arrays, 0.0);
  for (int p = 0; p < num_procs; ++p) {
    // Deterministic low-discrepancy placement of read offsets (golden-ratio
    // sequence): spreads starts uniformly like the paper's random sampling
    // would in expectation, without aliasing against the 32-array stripe
    // cycle the way evenly spaced offsets do.
    const double frac = std::fmod(0.6180339887498949 * (p + 1), 1.0);
    const std::int64_t start = static_cast<std::int64_t>(
        frac * static_cast<double>(file_bytes - bytes_per_proc));
    std::int64_t remaining = bytes_per_proc;
    std::int64_t off = start;
    while (remaining > 0) {
      const std::int64_t stripe = off / disk.stripe_bytes;
      const int array = static_cast<int>(stripe % disk.num_arrays);
      const std::int64_t in_stripe =
          std::min(remaining, (stripe + 1) * disk.stripe_bytes - off);
      load[array] += static_cast<double>(in_stripe);
      off += in_stripe;
      remaining -= in_stripe;
    }
  }
  const double worst = *std::max_element(load.begin(), load.end());
  return worst / disk.array_bw;
}

double aggregate_bandwidth(const DiskParams& disk, FileLayout layout,
                           int num_procs, std::int64_t bytes_per_proc,
                           std::int64_t file_bytes) {
  const double t =
      read_time(disk, layout, num_procs, bytes_per_proc, file_bytes);
  return static_cast<double>(bytes_per_proc) * num_procs / t;
}

int max_readers_per_array(const DiskParams& disk, int num_procs,
                          std::int64_t bytes_per_proc) {
  // A contiguous read of b bytes touches ceil(b / stripe) + 1 stripes at
  // most; with reads spread over the file, each array sees at most
  // ceil(N / num_arrays) * stripes_per_read readers (paper: N/32 * 2 for
  // 192 MB reads of 256 MB stripes).
  const int stripes_per_read =
      static_cast<int>((bytes_per_proc + disk.stripe_bytes - 1) /
                       disk.stripe_bytes) +
      1;
  return ((num_procs + disk.num_arrays - 1) / disk.num_arrays) *
         stripes_per_read;
}

}  // namespace swcaffe::io
