#include "io/prefetch.h"

#include <algorithm>

#include "base/log.h"

namespace swcaffe::io {

Prefetcher::Prefetcher(const DatasetSpec& dataset, const DiskParams& disk,
                       FileLayout layout, int batch, int rank, int num_procs,
                       std::size_t queue_depth)
    : data_(dataset),
      disk_(disk),
      layout_(layout),
      batch_(batch),
      num_procs_(num_procs),
      sampler_(dataset.num_samples, dataset.seed, rank),
      augment_rng_(dataset.seed ^ (0xa497ull + rank)),
      queue_depth_(queue_depth) {
  if (dataset.crop > 0) {
    SWC_CHECK_LE(dataset.crop, dataset.height);
    SWC_CHECK_LE(dataset.crop, dataset.width);
  }
  SWC_CHECK_GT(batch_, 0);
  SWC_CHECK_GT(queue_depth_, 0u);
  thread_ = std::thread(&Prefetcher::worker, this);
}

Prefetcher::~Prefetcher() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

Batch Prefetcher::pop() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return !queue_.empty(); });
  Batch b = std::move(queue_.front());
  queue_.pop_front();
  cv_.notify_all();
  return b;
}

void Prefetcher::augment(const std::vector<float>& image, float* dst) {
  const DatasetSpec& spec = data_.spec();
  const int oh = spec.out_height(), ow = spec.out_width();
  const int y0 = spec.crop > 0 && spec.height > oh
                     ? static_cast<int>(augment_rng_.uniform_int(
                           0, spec.height - oh))
                     : 0;
  const int x0 = spec.crop > 0 && spec.width > ow
                     ? static_cast<int>(augment_rng_.uniform_int(
                           0, spec.width - ow))
                     : 0;
  const bool flip = spec.mirror && augment_rng_.bernoulli(0.5);
  for (int c = 0; c < spec.channels; ++c) {
    const float* plane =
        image.data() + static_cast<std::size_t>(c) * spec.height * spec.width;
    float* out = dst + static_cast<std::size_t>(c) * oh * ow;
    for (int y = 0; y < oh; ++y) {
      const float* row =
          plane + static_cast<std::size_t>(y0 + y) * spec.width + x0;
      for (int x = 0; x < ow; ++x) {
        out[static_cast<std::size_t>(y) * ow + x] =
            flip ? row[ow - 1 - x] : row[x];
      }
    }
  }
}

void Prefetcher::worker() {
  const DatasetSpec& spec = data_.spec();
  const std::size_t img = static_cast<std::size_t>(spec.channels) *
                          spec.out_height() * spec.out_width();
  std::vector<float> image;
  while (true) {
    Batch b;
    b.images.resize(img * batch_);
    b.labels.resize(batch_);
    for (int i = 0; i < batch_; ++i) {
      const std::int64_t idx = sampler_.next();
      data_.fill_image(idx, image);
      augment(image, b.images.data() + i * img);
      b.labels[i] = static_cast<float>(data_.label_of(idx));
    }
    // A with-replacement batch larger than the dataset necessarily repeats
    // samples; the disk serves each byte at most once per batch, so the
    // billed read is capped at the whole file.
    const std::int64_t file_bytes = spec.num_samples * spec.sample_bytes();
    const std::int64_t read_bytes = std::min(
        static_cast<std::int64_t>(batch_) * spec.sample_bytes(), file_bytes);
    b.simulated_read_s =
        read_time(disk_, layout_, num_procs_, read_bytes, file_bytes);

    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return stop_ || queue_.size() < queue_depth_; });
    if (stop_) return;
    queue_.push_back(std::move(b));
    cv_.notify_all();
  }
}

}  // namespace swcaffe::io
