#include "perfmodel/device_model.h"

#include <algorithm>

#include "base/log.h"

namespace swcaffe::perfmodel {

DeviceModel k40m() {
  DeviceModel d;
  d.name = "nvidia-k40m";
  d.peak_sp_flops = 4.29e12;  // Table I
  d.mem_bw = 288e9;           // Table I
  // Calibrated so Table III's K40m column is reproduced in shape: overall
  // sustained efficiency of Caffe+cuDNN-v5.1 on this generation was ~15-25%
  // of peak, and the un-overlapped host input pipeline dominates AlexNet
  // ("over 40% of time", Sec. VI-B).
  d.conv_eff = 0.22;
  d.gemm_eff = 0.60;
  d.bw_eff = 0.75;
  d.input_pipeline_bw = 115e6;
  return d;
}

DeviceModel xeon_e5_2680v3() {
  DeviceModel d;
  d.name = "xeon-e5-2680v3";
  d.peak_sp_flops = 1.28e12;  // paper footnote 2
  d.mem_bw = 68e9;            // paper footnote 2
  d.conv_eff = 0.065;         // Caffe + OpenBLAS im2col path
  d.gemm_eff = 0.20;
  d.bw_eff = 0.50;
  d.input_pipeline_bw = 0.0;  // data already in host memory
  return d;
}

DeviceModel knl_7250() {
  DeviceModel d;
  d.name = "intel-knl";
  d.peak_sp_flops = 6.92e12;  // Table I
  d.mem_bw = 475e9;           // Table I (MCDRAM)
  d.conv_eff = 0.18;          // Intel-Caffe + MKL-DNN era numbers
  d.gemm_eff = 0.55;
  d.bw_eff = 0.70;
  d.input_pipeline_bw = 0.0;  // self-hosted: no PCIe staging
  return d;
}

DeviceModel sw26010_specsheet() {
  DeviceModel d;
  d.name = "sw26010";
  d.peak_sp_flops = 3.02e12;  // Table I (no dedicated SP path)
  d.mem_bw = 128e9;           // Table I (4 CGs x 32 GB/s nominal)
  return d;
}

namespace {

double stream_time_dev(const DeviceModel& dev, double bytes) {
  return bytes / (dev.mem_bw * dev.bw_eff);
}

double elementwise_dev(const DeviceModel& dev, std::int64_t count,
                       double passes) {
  return stream_time_dev(dev, 4.0 * count * passes);
}

}  // namespace

dnn::LayerTime estimate_layer_dev(const DeviceModel& dev,
                                  const core::LayerDesc& d, bool first_conv) {
  dnn::LayerTime t;
  switch (d.kind) {
    case core::LayerKind::kConv: {
      const double dir =
          std::max(d.conv.flops_fwd() / (dev.peak_sp_flops * dev.conv_eff),
                   stream_time_dev(dev, 4.0 * (d.input_count + d.output_count +
                                               d.param_count)));
      t.fwd_s = dir + dev.launch_overhead;
      t.bwd_s = (first_conv ? 1.0 : 2.0) * dir + dev.launch_overhead;
      break;
    }
    case core::LayerKind::kInnerProduct:
    case core::LayerKind::kLSTM: {
      const double dir =
          d.steps *
          std::max(d.fc.flops_fwd() / (dev.peak_sp_flops * dev.gemm_eff),
                   stream_time_dev(dev, 4.0 * (d.input_count + d.output_count +
                                               d.param_count) /
                                            std::max(d.steps, 1)));
      t.fwd_s = dir + d.steps * dev.launch_overhead;
      t.bwd_s = 2.0 * dir + d.steps * dev.launch_overhead;
      break;
    }
    case core::LayerKind::kPool:
      t.fwd_s = elementwise_dev(dev, d.input_count + d.output_count, 1.0);
      t.bwd_s = elementwise_dev(dev, d.input_count + 2 * d.output_count, 1.0);
      break;
    case core::LayerKind::kReLU:
      t.fwd_s = elementwise_dev(dev, d.input_count, 2.0);
      t.bwd_s = elementwise_dev(dev, d.input_count, 3.0);
      break;
    case core::LayerKind::kSigmoid:
    case core::LayerKind::kTanH:
      t.fwd_s = elementwise_dev(dev, d.input_count, 2.0);
      t.bwd_s = elementwise_dev(dev, d.input_count, 3.0);
      break;
    case core::LayerKind::kBatchNorm:
      t.fwd_s = elementwise_dev(dev, d.input_count, 4.0);
      t.bwd_s = elementwise_dev(dev, d.input_count, 5.0);
      break;
    case core::LayerKind::kLRN:
      t.fwd_s = elementwise_dev(dev, d.input_count, 6.0);
      t.bwd_s = elementwise_dev(dev, d.input_count, 8.0);
      break;
    case core::LayerKind::kDropout:
      t.fwd_s = elementwise_dev(dev, d.input_count, 3.0);
      t.bwd_s = elementwise_dev(dev, d.input_count, 3.0);
      break;
    case core::LayerKind::kSoftmax:
    case core::LayerKind::kSoftmaxLoss:
      t.fwd_s = elementwise_dev(dev, d.input_count, 4.0);
      t.bwd_s = elementwise_dev(dev, d.input_count, 2.0);
      break;
    case core::LayerKind::kEltwise:
      t.fwd_s = elementwise_dev(dev, d.input_count, 1.5);
      t.bwd_s = elementwise_dev(dev, d.input_count, 1.0);
      break;
    case core::LayerKind::kConcat:
    case core::LayerKind::kTransform:
      t.fwd_s = elementwise_dev(dev, d.output_count, 2.0);
      t.bwd_s = elementwise_dev(dev, d.output_count, 2.0);
      break;
    case core::LayerKind::kData:
    case core::LayerKind::kAccuracy:
      break;
  }
  return t;
}

double device_throughput_img_s(const DeviceModel& dev,
                               const std::vector<core::LayerDesc>& descs,
                               int batch, std::int64_t input_bytes) {
  double t = 0.0;
  bool saw_conv = false;
  for (const auto& d : descs) {
    const bool first_conv = d.kind == core::LayerKind::kConv && !saw_conv;
    if (d.kind == core::LayerKind::kConv) saw_conv = true;
    t += estimate_layer_dev(dev, d, first_conv).total();
  }
  if (dev.input_pipeline_bw > 0.0) {
    t += static_cast<double>(input_bytes) / dev.input_pipeline_bw;
  }
  SWC_CHECK_GT(t, 0.0);
  return batch / t;
}

}  // namespace swcaffe::perfmodel
