// Roofline models of the two baseline devices of the paper's evaluation
// (Table I / Table III): an NVIDIA K40m running Caffe+cuDNN-v5.1 and a
// 12-core Xeon E5-2680v3 running Caffe+OpenBLAS. The paper only uses these
// as measured throughput baselines; the roofline + calibrated per-layer-type
// efficiencies reproduce the relative shape (see EXPERIMENTS.md).
#pragma once

#include <string>
#include <vector>

#include "core/layer_desc.h"
#include "swdnn/layer_estimate.h"

namespace swcaffe::perfmodel {

struct DeviceModel {
  std::string name;
  double peak_sp_flops = 0.0;   ///< single-precision peak
  double mem_bw = 0.0;          ///< device memory bandwidth
  double conv_eff = 0.5;        ///< fraction of peak for conv kernels
  double gemm_eff = 0.6;        ///< fraction of peak for GEMM (FC) kernels
  double bw_eff = 0.75;         ///< fraction of mem_bw for streaming layers
  /// Fixed per-kernel-launch overhead (fwd and bwd each).
  double launch_overhead = 5e-6;
  /// Effective host->device input-pipeline bandwidth (bytes/s); the paper
  /// reports it dominates AlexNet on the GPU ("over 40% of time",
  /// Sec. VI-B). Zero disables (CPU baseline: data is already in host RAM).
  double input_pipeline_bw = 0.0;
};

/// Calibrated presets (Table I specs + Table III calibration).
DeviceModel k40m();
DeviceModel xeon_e5_2680v3();
/// Table I's third column (the paper never benchmarks KNL; spec-sheet plus
/// published Intel-Caffe efficiencies, for what-if comparisons only).
DeviceModel knl_7250();
/// The SW26010 spec row of Table I, for the spec-sheet printout.
DeviceModel sw26010_specsheet();

/// Forward/backward time of one layer on the device.
dnn::LayerTime estimate_layer_dev(const DeviceModel& dev,
                                  const core::LayerDesc& desc,
                                  bool first_conv = false);

/// End-to-end throughput: layer times plus the non-overlapped input
/// transfer of one mini-batch (`input_bytes` = bytes of the data blob).
double device_throughput_img_s(const DeviceModel& dev,
                               const std::vector<core::LayerDesc>& descs,
                               int batch, std::int64_t input_bytes);

}  // namespace swcaffe::perfmodel
