#include "swgemm/mesh_gemm.h"

#include <vector>

#include "base/log.h"
#include "hw/dma.h"
#include "trace/tracer.h"

namespace swcaffe::gemm {

namespace {

/// Emits the kernel's phase breakdown as spans: the timeline mirrors the
/// elapsed-time accounting below (DMA prologue/epilogue + the slower of
/// compute and RLC), so the traced duration equals stats.ledger.elapsed_s.
void trace_mesh_gemm(const hw::CostModel& cost, const char* name,
                     const MeshGemmStats& stats) {
  trace::Tracer* tracer = cost.tracer();
  if (!tracer) return;
  const int track = cost.trace_track();
  tracer->begin_span(track, name, "kernel.gemm");

  tracer->begin_span(track, "dma", "kernel.gemm.phase");
  trace::TrafficCounters dma;
  dma.dma_get_bytes = stats.ledger.dma_get_bytes;
  dma.dma_put_bytes = stats.ledger.dma_put_bytes;
  tracer->charge(track, dma);
  tracer->end_span(track, stats.dma_seconds);

  const bool compute_bound = stats.compute_seconds >= stats.rlc_seconds;
  tracer->begin_span(track, compute_bound ? "compute(+rlc)" : "rlc(+compute)",
                     "kernel.gemm.phase");
  trace::TrafficCounters crc;
  crc.rlc_bytes = stats.ledger.rlc_bytes;
  crc.flops = stats.ledger.flops;
  tracer->charge(track, crc);
  tracer->end_span(track, std::max(stats.compute_seconds, stats.rlc_seconds));

  tracer->end_span(track);
}

}  // namespace

int max_mesh_block(const hw::HwParams& params) {
  // Three square (L/8)^2 tiles of doubles per CPE must fit the LDM; keep a
  // factor-2 margin for double buffering as a real kernel would.
  const int mesh = params.mesh_rows;
  int best = mesh;
  for (int l = mesh; l <= 4096; l += mesh) {
    const std::size_t tile = static_cast<std::size_t>(l / mesh) * (l / mesh);
    if (3 * tile * sizeof(double) * 2 <= params.ldm_bytes) best = l;
  }
  return best;
}

MeshGemmStats mesh_gemm(hw::CoreGroup& cg, std::span<const double> a,
                        std::span<const double> b, std::span<double> c, int m,
                        int n, int k) {
  const hw::HwParams& hp = cg.params();
  const int mesh = hp.mesh_rows;
  SWC_CHECK_EQ(hp.mesh_rows, hp.mesh_cols);
  SWC_CHECK_MSG(m % mesh == 0 && n % mesh == 0 && k % mesh == 0,
                "mesh_gemm dims must divide the mesh: m=" << m << " n=" << n
                                                          << " k=" << k);
  SWC_CHECK_EQ(a.size(), static_cast<std::size_t>(m) * k);
  SWC_CHECK_EQ(b.size(), static_cast<std::size_t>(k) * n);
  SWC_CHECK_EQ(c.size(), static_cast<std::size_t>(m) * n);

  const int bm = m / mesh, bn = n / mesh, bk = k / mesh;
  const std::size_t tile_bytes =
      (static_cast<std::size_t>(bm) * bk + static_cast<std::size_t>(bk) * bn +
       static_cast<std::size_t>(bm) * bn) *
      sizeof(double);
  SWC_CHECK_MSG(tile_bytes <= hp.ldm_bytes,
                "mesh_gemm tiles exceed LDM: " << tile_bytes << "B > "
                                               << hp.ldm_bytes << "B");

  cg.reset();
  // Quiet cost copy: the kernel reports tracing as phase summaries (below)
  // whose timeline matches the overlap accounting; per-transfer DMA spans
  // would double-advance the trace clock.
  hw::CostModel quiet_cost = cg.cost();
  quiet_cost.set_tracer(nullptr);
  hw::DmaEngine dma(quiet_cost);
  const int ncpe = hp.mesh_size();

  // Per-CPE LDM tiles, loaded from main memory once (strided DMA: each block
  // row is one contiguous run).
  struct Tiles {
    std::span<double> a, b, c;
  };
  std::vector<Tiles> tiles(static_cast<std::size_t>(ncpe));
  for (int i = 0; i < mesh; ++i) {
    for (int j = 0; j < mesh; ++j) {
      hw::Ldm& ldm = cg.ldm(i, j);
      Tiles& t = tiles[i * mesh + j];
      t.a = ldm.alloc(static_cast<std::size_t>(bm) * bk);
      t.b = ldm.alloc(static_cast<std::size_t>(bk) * bn);
      t.c = ldm.alloc(static_cast<std::size_t>(bm) * bn);
      dma.get_strided(a.subspan(static_cast<std::size_t>(i) * bm * k + j * bk),
                      k, t.a, bk, bm, ncpe);
      dma.get_strided(b.subspan(static_cast<std::size_t>(i) * bk * n + j * bn),
                      n, t.b, bn, bk, ncpe);
      dma.get_strided(
          std::span<const double>(c).subspan(
              static_cast<std::size_t>(i) * bm * n + j * bn),
          n, t.c, bn, bm, ncpe);
    }
  }

  hw::RlcFabric& rlc = cg.rlc();
  double compute_s = 0.0;
  const double flops_per_step_total =
      2.0 * bm * bn * bk * ncpe;  // all 64 CPEs work concurrently

  for (int t = 0; t < mesh; ++t) {
    // Broadcast phase: A(i,t) along each row i, B(t,j) along each column j.
    for (int i = 0; i < mesh; ++i) rlc.row_broadcast(i, t, tiles[i * mesh + t].a);
    for (int j = 0; j < mesh; ++j) rlc.col_broadcast(t, j, tiles[t * mesh + j].b);

    // Compute phase: every CPE multiplies the step's A and B operands into
    // its resident C tile.
    for (int i = 0; i < mesh; ++i) {
      for (int j = 0; j < mesh; ++j) {
        Tiles& mine = tiles[i * mesh + j];
        std::vector<double> a_recv, b_recv;
        std::span<const double> a_op, b_op;
        if (j == t) {
          a_op = mine.a;
        } else {
          a_recv = rlc.receive_row(i, j);
          a_op = a_recv;
        }
        if (i == t) {
          b_op = mine.b;
        } else {
          b_recv = rlc.receive_col(i, j);
          b_op = b_recv;
        }
        for (int x = 0; x < bm; ++x) {
          for (int l = 0; l < bk; ++l) {
            const double av = a_op[static_cast<std::size_t>(x) * bk + l];
            for (int y = 0; y < bn; ++y) {
              mine.c[static_cast<std::size_t>(x) * bn + y] +=
                  av * b_op[static_cast<std::size_t>(l) * bn + y];
            }
          }
        }
      }
    }
    compute_s += cg.cost().compute_time(flops_per_step_total,
                                        /*single_precision=*/false);
  }
  SWC_CHECK_EQ(rlc.pending(), 0u);

  // Write C back (the only main-memory store of the whole kernel).
  for (int i = 0; i < mesh; ++i) {
    for (int j = 0; j < mesh; ++j) {
      dma.put_strided(tiles[i * mesh + j].c,
                      c.subspan(static_cast<std::size_t>(i) * bm * n + j * bn),
                      n, bn, bm, ncpe);
    }
  }

  MeshGemmStats stats;
  stats.dma_seconds = dma.ledger().elapsed_s;
  stats.rlc_seconds = rlc.ledger().elapsed_s;
  stats.compute_seconds = compute_s;
  stats.ledger.add(dma.ledger());
  stats.ledger.add(rlc.ledger());
  stats.ledger.flops = 2.0 * m * n * static_cast<double>(k);
  // RLC is fully pipelined with compute on real hardware; charge the slower
  // of the two plus the (non-overlapped) DMA epilogue/prologue.
  stats.ledger.elapsed_s =
      stats.dma_seconds + std::max(stats.compute_seconds, stats.rlc_seconds);
  trace_mesh_gemm(cg.cost(), "mesh_gemm", stats);
  return stats;
}

MeshGemmStats blocked_mesh_gemm(hw::CoreGroup& cg, std::span<const double> a,
                                std::span<const double> b,
                                std::span<double> c, int m, int n, int k) {
  SWC_CHECK_GT(m, 0);
  SWC_CHECK_GT(n, 0);
  SWC_CHECK_GT(k, 0);
  SWC_CHECK_EQ(a.size(), static_cast<std::size_t>(m) * k);
  SWC_CHECK_EQ(b.size(), static_cast<std::size_t>(k) * n);
  SWC_CHECK_EQ(c.size(), static_cast<std::size_t>(m) * n);
  const hw::HwParams& hp = cg.params();
  const int mesh = hp.mesh_rows;
  const int panel = std::min(256, max_mesh_block(hp));

  // Wraps all per-panel mesh_gemm spans; duration is their sum.
  trace::SpanScope blocked_span(cg.cost().tracer(), cg.cost().trace_track(),
                                "blocked_mesh_gemm", "kernel.gemm");

  auto round_up = [mesh](int v) { return ((v + mesh - 1) / mesh) * mesh; };

  MeshGemmStats total;
  std::vector<double> pa, pb, pc;
  for (int i0 = 0; i0 < m; i0 += panel) {
    const int bm = std::min(panel, m - i0);
    const int pm = round_up(bm);
    for (int j0 = 0; j0 < n; j0 += panel) {
      const int bn = std::min(panel, n - j0);
      const int pn = round_up(bn);
      // The C panel stays LDM-resident across the k loop (accumulated by
      // the kernel itself), matching the analytic plan's single C touch.
      pc.assign(static_cast<std::size_t>(pm) * pn, 0.0);
      for (int x = 0; x < bm; ++x) {
        for (int y = 0; y < bn; ++y) {
          pc[static_cast<std::size_t>(x) * pn + y] =
              c[static_cast<std::size_t>(i0 + x) * n + (j0 + y)];
        }
      }
      for (int k0 = 0; k0 < k; k0 += panel) {
        const int bk = std::min(panel, k - k0);
        const int pk = round_up(bk);
        pa.assign(static_cast<std::size_t>(pm) * pk, 0.0);
        pb.assign(static_cast<std::size_t>(pk) * pn, 0.0);
        for (int x = 0; x < bm; ++x) {
          for (int l = 0; l < bk; ++l) {
            pa[static_cast<std::size_t>(x) * pk + l] =
                a[static_cast<std::size_t>(i0 + x) * k + (k0 + l)];
          }
        }
        for (int l = 0; l < bk; ++l) {
          for (int y = 0; y < bn; ++y) {
            pb[static_cast<std::size_t>(l) * pn + y] =
                b[static_cast<std::size_t>(k0 + l) * n + (j0 + y)];
          }
        }
        const MeshGemmStats stats = mesh_gemm(cg, pa, pb, pc, pm, pn, pk);
        total.ledger.add(stats.ledger);
        total.compute_seconds += stats.compute_seconds;
        total.rlc_seconds += stats.rlc_seconds;
        total.dma_seconds += stats.dma_seconds;
      }
      for (int x = 0; x < bm; ++x) {
        for (int y = 0; y < bn; ++y) {
          c[static_cast<std::size_t>(i0 + x) * n + (j0 + y)] =
              pc[static_cast<std::size_t>(x) * pn + y];
        }
      }
    }
  }
  return total;
}

}  // namespace swcaffe::gemm
