#include "swgemm/estimate.h"

#include <algorithm>
#include <cmath>

#include "base/log.h"

namespace swcaffe::gemm {

namespace {

constexpr std::int64_t kPanel = 256;       // LDM-fitting square panel edge
constexpr std::size_t kElemBytes = 4;      // SP data in main memory

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

GemmEstimate estimate_impl(const hw::CostModel& cost, std::int64_t m,
                           std::int64_t n, std::int64_t k, bool reuse_c,
                           double dma_multiplier,
                           const GemmBlocking& blocking) {
  SWC_CHECK_GT(m, 0);
  SWC_CHECK_GT(n, 0);
  SWC_CHECK_GT(k, 0);
  SWC_CHECK_GT(blocking.block_m, 0);
  SWC_CHECK_GT(blocking.block_n, 0);
  SWC_CHECK_GT(blocking.block_k, 0);
  const hw::HwParams& hp = cost.params();
  const int mesh = hp.mesh_rows;
  SWC_CHECK_GT(blocking.bcast_chunk, 0);
  SWC_CHECK_EQ(mesh % blocking.bcast_chunk, 0);

  GemmEstimate est;
  est.block_m = static_cast<int>(std::min<std::int64_t>(m, blocking.block_m));
  est.block_n = static_cast<int>(std::min<std::int64_t>(n, blocking.block_n));
  est.block_k = static_cast<int>(std::min<std::int64_t>(k, blocking.block_k));
  const std::int64_t mb = ceil_div(m, est.block_m);
  const std::int64_t nb = ceil_div(n, est.block_n);

  // --- DMA traffic of the blocked plan --------------------------------------
  const double a_bytes = static_cast<double>(m) * k * nb * kElemBytes;
  const double b_bytes = static_cast<double>(k) * n * mb * kElemBytes;
  const double c_bytes =
      static_cast<double>(m) * n * (reuse_c ? 1.0 : 2.0) * kElemBytes;
  est.dma_bytes = static_cast<std::size_t>(
      (a_bytes + b_bytes + c_bytes) * dma_multiplier);

  // Per-CPE contiguous run length: each CPE's tile row is 1/mesh of the
  // panel's k (for A) or n (for B/C) extent. Short runs collapse strided
  // bandwidth (Principle 3).
  auto run_bytes = [&](std::int64_t extent) {
    return static_cast<std::size_t>(
        std::max<std::int64_t>(1, extent / mesh) * kElemBytes);
  };
  const std::size_t probe = 32 * 1024;  // representative per-CPE burst
  const double bw_a = cost.dma_strided_bandwidth(probe, run_bytes(est.block_k),
                                                 hp.mesh_size());
  const double bw_bc = cost.dma_strided_bandwidth(
      probe, run_bytes(est.block_n), hp.mesh_size());
  est.dma_seconds = dma_multiplier *
                    (a_bytes / bw_a + (b_bytes + c_bytes) / bw_bc);

  // --- Compute ---------------------------------------------------------------
  est.flops = 2.0 * static_cast<double>(m) * n * k;
  // Mesh rows/cols idle when a dimension is narrower than the mesh.
  const double util = std::min<double>(1.0, static_cast<double>(m) / mesh) *
                      std::min<double>(1.0, static_cast<double>(n) / mesh);
  est.compute_seconds =
      cost.compute_time(est.flops, /*single_precision=*/true) / std::max(util, 1e-3);

  // Per-panel launch latency: a DMA startup per streamed buffer (two when
  // double-buffered) plus the RLC synchronization of the broadcast pipeline.
  // Fusing bcast_chunk steps into one synchronization removes (chunk-1)
  // row+column latencies per chunk; at chunk = 1 the RLC term is exactly
  // zero, which keeps the default blocking's launch cost where the
  // calibration put it.
  const double launches = static_cast<double>(mb) * nb * ceil_div(k, est.block_k);
  const double launch_cycles = std::max(
      0.0, hp.dma_latency_cycles * (blocking.double_buffered ? 2.0 : 1.0) +
               hp.rlc_latency_cycles *
                   (static_cast<double>(mesh) / blocking.bcast_chunk - mesh));
  const double launch_s = launches * launch_cycles * hp.cycle_seconds();
  // Double-buffered kernel: DMA overlaps compute and the longer stream wins.
  // Single-buffered plans serialize the two streams.
  est.seconds = blocking.double_buffered
                    ? std::max(est.compute_seconds, est.dma_seconds) + launch_s
                    : est.compute_seconds + est.dma_seconds + launch_s;
  est.achieved_gflops = est.flops / est.seconds / 1e9;
  return est;
}

}  // namespace

GemmEstimate estimate_gemm(const hw::CostModel& cost, std::int64_t m,
                           std::int64_t n, std::int64_t k, bool reuse_c) {
  return estimate_impl(cost, m, n, k, reuse_c, /*dma_multiplier=*/1.0,
                       GemmBlocking{});
}

GemmEstimate estimate_gemm_blocked(const hw::CostModel& cost, std::int64_t m,
                                   std::int64_t n, std::int64_t k,
                                   const GemmBlocking& blocking,
                                   bool reuse_c) {
  return estimate_impl(cost, m, n, k, reuse_c, /*dma_multiplier=*/1.0,
                       blocking);
}

GemmEstimate estimate_gemm_no_rlc(const hw::CostModel& cost, std::int64_t m,
                                  std::int64_t n, std::int64_t k) {
  // Without RLC reuse each CPE streams the full panel rows/columns it needs:
  // the A and B traffic scale by the mesh dimension (8). Modelled as a flat
  // multiplier on the DMA stream (C is still touched once).
  return estimate_impl(cost, m, n, k, /*reuse_c=*/true,
                       /*dma_multiplier=*/cost.params().mesh_rows,
                       GemmBlocking{});
}

}  // namespace swcaffe::gemm
