// Host reference GEMM.
//
// This is the framework's functional matrix-multiply workhorse (layers call
// it for real computation) and the oracle the simulated mesh GEMM is tested
// against. Row-major, single precision, with transpose flags in the BLAS
// convention.
#pragma once

namespace swcaffe::gemm {

/// C = alpha * op(A) * op(B) + beta * C.
///
/// Shapes after op(): op(A) is m x k, op(B) is k x n, C is m x n, all
/// row-major and densely packed (lda = op-columns).
void sgemm(bool trans_a, bool trans_b, int m, int n, int k, float alpha,
           const float* a, const float* b, float beta, float* c);

/// y = alpha * op(A) * x + beta * y; op(A) is m x n.
void sgemv(bool trans_a, int m, int n, float alpha, const float* a,
           const float* x, float beta, float* y);

}  // namespace swcaffe::gemm
