// Functional mesh GEMM: the paper's 8-step register-communication algorithm
// (Sec. IV-A, Fig. 3) executed on the hw::CoreGroup micro model.
//
// C(m x n) += A(m x k) * B(k x n), all row-major doubles. Matrices are
// partitioned into an 8x8 grid of equal blocks; CPE(i,j) owns block (i,j) of
// each matrix in its LDM. At time step t, CPE(i,t) broadcasts its A block
// along row i and CPE(t,j) broadcasts its B block along column j, so each
// CPE performs C(i,j) += A(i,t) * B(t,j); after 8 steps the product is
// complete having fetched A, B and C from main memory exactly once — the
// optimal flop-to-byte plan the paper claims (tested as an invariant).
#pragma once

#include <span>

#include "hw/chip.h"
#include "hw/cost_model.h"

namespace swcaffe::gemm {

struct MeshGemmStats {
  hw::TrafficLedger ledger;   ///< DMA + RLC + compute totals
  double compute_seconds = 0; ///< portion of elapsed spent in FMA phases
  double rlc_seconds = 0;     ///< portion spent in register communication
  double dma_seconds = 0;     ///< portion spent in main-memory DMA
};

/// Runs the mesh GEMM on the core group model. Requires m, n, k divisible by
/// the mesh dimension (8) and all three per-CPE tiles to fit the 64 KB LDM;
/// violations throw base::CheckError.
MeshGemmStats mesh_gemm(hw::CoreGroup& cg, std::span<const double> a,
                        std::span<const double> b, std::span<double> c, int m,
                        int n, int k);

/// Largest square block edge L such that three (L/8)^2 double tiles fit one
/// LDM (the blocked driver's panel size).
int max_mesh_block(const hw::HwParams& params);

/// Blocked driver for arbitrary problem sizes: partitions C into LDM-sized
/// panels (zero-padding ragged edges to mesh multiples) and runs the mesh
/// kernel per panel, accumulating over the k dimension — the functional
/// counterpart of the analytic estimate_gemm() plan. Aggregates the panels'
/// stats.
MeshGemmStats blocked_mesh_gemm(hw::CoreGroup& cg, std::span<const double> a,
                                std::span<const double> b,
                                std::span<double> c, int m, int n, int k);

}  // namespace swcaffe::gemm
