// Analytic performance model for blocked GEMM on one SW26010 core group.
//
// Used by the layer-time estimators at paper scale (batch-128 VGG-16 etc.)
// where functionally executing the mesh kernel would be pointless: the plan
// is identical, only the byte/flop counts matter. The model mirrors the
// blocked driver exactly: panel sizes chosen to fit LDM, A panels re-read
// once per column block, B panels once per row block, C touched once, DMA
// bandwidth derated by the per-CPE contiguous run length (Principle 3 — this
// is what makes small-channel convolutions slow, Table II / Sec. VI-B).
#pragma once

#include <cstdint>

#include "hw/cost_model.h"

namespace swcaffe::gemm {

struct GemmEstimate {
  double seconds = 0;          ///< simulated kernel time
  double flops = 0;            ///< 2*m*n*k
  double achieved_gflops = 0;  ///< flops / seconds / 1e9
  double compute_seconds = 0;
  double dma_seconds = 0;
  std::size_t dma_bytes = 0;
  int block_m = 0, block_n = 0, block_k = 0;
};

/// One candidate blocking of the blocked mesh-GEMM driver — the knobs the
/// swtune autotuner searches. The default value reproduces the hand-written
/// plan estimate_gemm() has always priced (256^3 panels, double-buffered A/B
/// streams, per-step broadcasts), so estimate_gemm_blocked(default) and
/// estimate_gemm() are bit-identical.
struct GemmBlocking {
  int block_m = 256;
  int block_n = 256;
  int block_k = 256;
  /// Double-buffer the streamed A/B panels: DMA overlaps compute at the
  /// price of twice the LDM footprint per streamed tile. Single-buffered
  /// plans serialize the two streams but admit larger panels.
  bool double_buffered = true;
  /// RLC broadcast granularity: how many of the mesh's pipeline steps share
  /// one launch synchronization. 1 is the classic per-step broadcast of
  /// Fig. 3; fusing steps trims per-launch RLC latency but stages that many
  /// A/B tiles at once in LDM.
  int bcast_chunk = 1;

  bool operator==(const GemmBlocking&) const = default;
};

/// Estimates C(m x n) += A(m x k) * B(k x n) with single-precision data in
/// memory (the DNN default). `reuse_c_in_ldm` skips the C read (fresh
/// output, beta = 0).
GemmEstimate estimate_gemm(const hw::CostModel& cost, std::int64_t m,
                           std::int64_t n, std::int64_t k,
                           bool reuse_c_in_ldm = true);

/// Same model evaluated at an arbitrary candidate blocking (swtune's cost
/// oracle). Panel edges are clamped to the problem dims exactly the way
/// estimate_gemm clamps its fixed panel; `blocking` must have positive block
/// edges and a bcast_chunk that divides the mesh dimension. Legality (LDM
/// budget, DMA contracts) is NOT judged here — candidates go through
/// check::verify_gemm first.
GemmEstimate estimate_gemm_blocked(const hw::CostModel& cost, std::int64_t m,
                                   std::int64_t n, std::int64_t k,
                                   const GemmBlocking& blocking,
                                   bool reuse_c_in_ldm = true);

/// Baseline for the ablation bench: same blocking but NO register-level
/// communication, so every CPE must stream the full A row-panel and B
/// column-panel it needs (8x the mesh kernel's DMA traffic, Principle 4).
GemmEstimate estimate_gemm_no_rlc(const hw::CostModel& cost, std::int64_t m,
                                  std::int64_t n, std::int64_t k);

}  // namespace swcaffe::gemm
