// Analytic performance model for blocked GEMM on one SW26010 core group.
//
// Used by the layer-time estimators at paper scale (batch-128 VGG-16 etc.)
// where functionally executing the mesh kernel would be pointless: the plan
// is identical, only the byte/flop counts matter. The model mirrors the
// blocked driver exactly: panel sizes chosen to fit LDM, A panels re-read
// once per column block, B panels once per row block, C touched once, DMA
// bandwidth derated by the per-CPE contiguous run length (Principle 3 — this
// is what makes small-channel convolutions slow, Table II / Sec. VI-B).
#pragma once

#include <cstdint>

#include "hw/cost_model.h"

namespace swcaffe::gemm {

struct GemmEstimate {
  double seconds = 0;          ///< simulated kernel time
  double flops = 0;            ///< 2*m*n*k
  double achieved_gflops = 0;  ///< flops / seconds / 1e9
  double compute_seconds = 0;
  double dma_seconds = 0;
  std::size_t dma_bytes = 0;
  int block_m = 0, block_n = 0, block_k = 0;
};

/// Estimates C(m x n) += A(m x k) * B(k x n) with single-precision data in
/// memory (the DNN default). `reuse_c_in_ldm` skips the C read (fresh
/// output, beta = 0).
GemmEstimate estimate_gemm(const hw::CostModel& cost, std::int64_t m,
                           std::int64_t n, std::int64_t k,
                           bool reuse_c_in_ldm = true);

/// Baseline for the ablation bench: same blocking but NO register-level
/// communication, so every CPE must stream the full A row-panel and B
/// column-panel it needs (8x the mesh kernel's DMA traffic, Principle 4).
GemmEstimate estimate_gemm_no_rlc(const hw::CostModel& cost, std::int64_t m,
                                  std::int64_t n, std::int64_t k);

}  // namespace swcaffe::gemm
