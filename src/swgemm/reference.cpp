#include "swgemm/reference.h"

#include <algorithm>
#include <vector>

#include "base/log.h"

namespace swcaffe::gemm {

namespace {

/// NN kernel with i-l-j loop order (streams B rows, C rows stay hot).
void gemm_nn(int m, int n, int k, float alpha, const float* a, const float* b,
             float* c) {
  for (int i = 0; i < m; ++i) {
    float* ci = c + static_cast<std::size_t>(i) * n;
    const float* ai = a + static_cast<std::size_t>(i) * k;
    for (int l = 0; l < k; ++l) {
      const float av = alpha * ai[l];
      if (av == 0.0f) continue;
      const float* bl = b + static_cast<std::size_t>(l) * n;
      for (int j = 0; j < n; ++j) ci[j] += av * bl[j];
    }
  }
}

/// NT kernel: rows of A dotted with rows of B.
void gemm_nt(int m, int n, int k, float alpha, const float* a, const float* b,
             float* c) {
  for (int i = 0; i < m; ++i) {
    const float* ai = a + static_cast<std::size_t>(i) * k;
    float* ci = c + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* bj = b + static_cast<std::size_t>(j) * k;
      float acc = 0.0f;
      for (int l = 0; l < k; ++l) acc += ai[l] * bj[l];
      ci[j] += alpha * acc;
    }
  }
}

/// TN kernel: columns of A (rows of A^T) times rows of B.
void gemm_tn(int m, int n, int k, float alpha, const float* a, const float* b,
             float* c) {
  for (int l = 0; l < k; ++l) {
    const float* al = a + static_cast<std::size_t>(l) * m;
    const float* bl = b + static_cast<std::size_t>(l) * n;
    for (int i = 0; i < m; ++i) {
      const float av = alpha * al[i];
      if (av == 0.0f) continue;
      float* ci = c + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) ci[j] += av * bl[j];
    }
  }
}

}  // namespace

void sgemm(bool trans_a, bool trans_b, int m, int n, int k, float alpha,
           const float* a, const float* b, float beta, float* c) {
  SWC_CHECK_GE(m, 0);
  SWC_CHECK_GE(n, 0);
  SWC_CHECK_GE(k, 0);
  const std::size_t cn = static_cast<std::size_t>(m) * n;
  if (beta == 0.0f) {
    std::fill(c, c + cn, 0.0f);
  } else if (beta != 1.0f) {
    for (std::size_t i = 0; i < cn; ++i) c[i] *= beta;
  }
  if (alpha == 0.0f || m == 0 || n == 0 || k == 0) return;

  if (!trans_a && !trans_b) {
    gemm_nn(m, n, k, alpha, a, b, c);
  } else if (!trans_a && trans_b) {
    gemm_nt(m, n, k, alpha, a, b, c);
  } else if (trans_a && !trans_b) {
    gemm_tn(m, n, k, alpha, a, b, c);
  } else {
    // TT is rare; materialize op(B) once and reuse the NT kernel on
    // (A^T B^T) = A^T * (B^T). B is n x k stored as k rows? op(B)=B^T with B
    // given as n x k row-major; materialize bt as k-major n x k -> (k x n).
    std::vector<float> bt(static_cast<std::size_t>(k) * n);
    for (int j = 0; j < n; ++j) {
      for (int l = 0; l < k; ++l) {
        bt[static_cast<std::size_t>(l) * n + j] =
            b[static_cast<std::size_t>(j) * k + l];
      }
    }
    gemm_tn(m, n, k, alpha, a, bt.data(), c);
  }
}

void sgemv(bool trans_a, int m, int n, float alpha, const float* a,
           const float* x, float beta, float* y) {
  const int out = trans_a ? n : m;
  for (int i = 0; i < out; ++i) y[i] *= beta;
  if (!trans_a) {
    for (int i = 0; i < m; ++i) {
      const float* ai = a + static_cast<std::size_t>(i) * n;
      float acc = 0.0f;
      for (int j = 0; j < n; ++j) acc += ai[j] * x[j];
      y[i] += alpha * acc;
    }
  } else {
    for (int i = 0; i < m; ++i) {
      const float* ai = a + static_cast<std::size_t>(i) * n;
      const float xv = alpha * x[i];
      if (xv == 0.0f) continue;
      for (int j = 0; j < n; ++j) y[j] += xv * ai[j];
    }
  }
}

}  // namespace swcaffe::gemm
